"""Model zoo: the five models of the paper's evaluation (section 6.1).

Long-tail cells (SC-RNN, MI-LSTM, subLSTM) exercise Astra where cuDNN has
no coverage; the stacked LSTM and GNMT provide the cuDNN comparison
points.  Each builder traces one training mini-batch (forward + loss +
backward) at fixed shapes.
"""

from .cells import ModelBuilder, ModelConfig, TracedModel
from .datasets import (
    HUTTER_LENGTHS,
    PAPER_PTB_BUCKETS,
    PTB_LENGTHS,
    LengthDistribution,
    bucket_for,
    compute_buckets,
)
from .attn_lstm import build_attn_lstm
from .gnmt import build_gnmt
from .milstm import build_milstm
from .rhn import build_rhn
from .scrnn import build_scrnn
from .stacked_lstm import build_stacked_lstm
from .sublstm import build_sublstm
from .tcn import build_tcn

#: the five models of the paper's evaluation (section 6.1)
MODEL_BUILDERS = {
    "scrnn": build_scrnn,
    "milstm": build_milstm,
    "sublstm": build_sublstm,
    "stacked_lstm": build_stacked_lstm,
    "gnmt": build_gnmt,
}

#: additional long-tail cells named in the paper's introduction
EXTRA_BUILDERS = {
    "rhn": build_rhn,
    "attn_lstm": build_attn_lstm,
    "tcn": build_tcn,
}

__all__ = [
    "ModelBuilder", "ModelConfig", "TracedModel",
    "HUTTER_LENGTHS", "PAPER_PTB_BUCKETS", "PTB_LENGTHS",
    "LengthDistribution", "bucket_for", "compute_buckets",
    "build_attn_lstm", "build_gnmt", "build_milstm", "build_rhn",
    "build_scrnn", "build_stacked_lstm", "build_sublstm",
    "build_tcn", "MODEL_BUILDERS", "EXTRA_BUILDERS",
]
