"""SC-RNN: structurally constrained recurrent network (Mikolov et al. 2014).

A long-tail cell with a fast hidden state and a slowly-moving context
state:

    s_t = (1 - alpha) * (x_t @ B) + alpha * s_{t-1}
    h_t = sigmoid(s_t @ P + x_t @ A + h_{t-1} @ R)
    y_t = h_t @ U + s_t @ V        (folded into the shared LM head here)

Per step the three h-projections share arguments pairwise and form a
GEMM-accumulator ladder -- the exact fusion pattern of paper Figure 1,
which is drawn from this model's backward pass.
"""

from __future__ import annotations

from ..ir.trace import Var
from .cells import ModelBuilder, ModelConfig, TracedModel

#: paper section 6.1 evaluates SC-RNN on the Penn Tree Bank dataset
DEFAULT_CONFIG = ModelConfig(hidden_size=650, embed_size=650, vocab_size=2000)


def build_scrnn(config: ModelConfig = DEFAULT_CONFIG, context_fraction: float = 0.5,
                alpha: float = 0.95) -> TracedModel:
    """Trace one training mini-batch of the SC-RNN language model."""
    builder = ModelBuilder("scrnn", config)
    tr = builder.tracer
    hidden = config.hidden_size
    context = max(8, int(hidden * context_fraction))

    with tr.scope("params"):
        w_b = tr.param((config.embed_size, context), label="B")
        w_p = tr.param((context, hidden), label="P")
        w_a = tr.param((config.embed_size, hidden), label="A")
        w_r = tr.param((hidden, hidden), label="R")

    xs = builder.token_inputs()
    h = builder.zeros_state("h0")
    s = tr.input((config.batch_size, context), label="s0")

    hiddens: list[Var] = []
    for t, x in enumerate(xs):
        with tr.scope(f"layer0/step{t}"):
            s_in = tr.scale(tr.matmul(x, w_b), 1.0 - alpha)
            s = tr.add(s_in, tr.scale(s, alpha))
            pre = tr.add(tr.add(tr.matmul(s, w_p), tr.matmul(x, w_a)), tr.matmul(h, w_r))
            h = tr.sigmoid(pre)
            hiddens.append(h)

    loss = builder.lm_loss(hiddens)
    return builder.finish(loss)
