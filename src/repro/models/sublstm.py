"""subLSTM: subtractive-gating LSTM (Costa et al. 2017).

A cortical-microcircuit-inspired cell where gating is subtractive rather
than multiplicative:

    i, f, o, z = sigmoid(x@W* + h@U* + b*)        (all four sigmoidal)
    c_t = f * c_{t-1} + z - i
    h_t = sigmoid(c_t) - o

Another long-tail structure with the classic 8-GEMMs-per-step skeleton.
Paper Table 4 reports up to 3x speedup on this model (PTB dataset).
"""

from __future__ import annotations

from ..ir.trace import Var
from .cells import ModelBuilder, ModelConfig, TracedModel

DEFAULT_CONFIG = ModelConfig(hidden_size=650, embed_size=650, vocab_size=2000)

_GATES = ("i", "f", "o", "z")


def build_sublstm(config: ModelConfig = DEFAULT_CONFIG) -> TracedModel:
    """Trace one training mini-batch of the subLSTM language model."""
    builder = ModelBuilder("sublstm", config)
    tr = builder.tracer
    hidden = config.hidden_size

    with tr.scope("params"):
        weights = {
            name: (
                tr.param((config.embed_size, hidden), label=f"W{name}"),
                tr.param((hidden, hidden), label=f"U{name}"),
                tr.param((hidden,), label=f"b{name}"),
            )
            for name in _GATES
        }

    xs = builder.token_inputs()
    h = builder.zeros_state("h0")
    c = builder.zeros_state("c0")

    hiddens: list[Var] = []
    for t, x in enumerate(xs):
        with tr.scope(f"layer0/step{t}"):
            acts = {}
            for name in _GATES:
                w, u, b = weights[name]
                pre = tr.add(tr.add(tr.matmul(x, w), tr.matmul(h, u)), b)
                acts[name] = tr.sigmoid(pre)
            c = tr.add(tr.mul(acts["f"], c), tr.sub(acts["z"], acts["i"]))
            h = tr.sub(tr.sigmoid(c), acts["o"])
            hiddens.append(h)

    loss = builder.lm_loss(hiddens)
    return builder.finish(loss)
