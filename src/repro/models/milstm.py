"""MI-LSTM: LSTM with multiplicative integration (Wu et al. 2016).

Replaces every gate pre-activation ``x@W + h@U + b`` with the
multiplicative-integration form

    alpha * (x@W) * (h@U) + beta1 * (x@W) + beta2 * (h@U) + b

Four gates -> eight GEMMs per step (four sharing ``x_t``, four sharing
``h_{t-1}``) plus a large tail of elementwise work: exactly the long-tail
structure cuDNN does not accelerate (paper section 1) but Astra does.
Evaluated on the Hutter Prize character-level dataset (section 6.1).
"""

from __future__ import annotations

from ..ir.trace import Tracer, Var
from .cells import ModelBuilder, ModelConfig, TracedModel

#: Hutter is character-level: small vocabulary, larger hidden state
DEFAULT_CONFIG = ModelConfig(hidden_size=1024, embed_size=512, vocab_size=205)

_GATES = ("i", "f", "o", "g")


def _mi_gate(tr: Tracer, x: Var, h: Var, w: Var, u: Var,
             alpha: Var, beta1: Var, beta2: Var, bias: Var) -> Var:
    wx = tr.matmul(x, w)
    uh = tr.matmul(h, u)
    mi = tr.mul(alpha, tr.mul(wx, uh))
    lin = tr.add(tr.mul(beta1, wx), tr.mul(beta2, uh))
    return tr.add(tr.add(mi, lin), bias)


def build_milstm(config: ModelConfig = DEFAULT_CONFIG) -> TracedModel:
    """Trace one training mini-batch of the MI-LSTM character model."""
    builder = ModelBuilder("milstm", config)
    tr = builder.tracer
    hidden = config.hidden_size

    with tr.scope("params"):
        gates = {}
        for name in _GATES:
            gates[name] = (
                tr.param((config.embed_size, hidden), label=f"W{name}"),
                tr.param((hidden, hidden), label=f"U{name}"),
                tr.param((hidden,), label=f"alpha_{name}"),
                tr.param((hidden,), label=f"beta1_{name}"),
                tr.param((hidden,), label=f"beta2_{name}"),
                tr.param((hidden,), label=f"b{name}"),
            )

    xs = builder.token_inputs()
    h = builder.zeros_state("h0")
    c = builder.zeros_state("c0")

    hiddens: list[Var] = []
    for t, x in enumerate(xs):
        with tr.scope(f"layer0/step{t}"):
            pre = {
                name: _mi_gate(tr, x, h, *gates[name]) for name in _GATES
            }
            i = tr.sigmoid(pre["i"])
            f = tr.sigmoid(pre["f"])
            o = tr.sigmoid(pre["o"])
            g = tr.tanh(pre["g"])
            c = tr.add(tr.mul(f, c), tr.mul(i, g))
            h = tr.mul(o, tr.tanh(c))
            hiddens.append(h)

    loss = builder.lm_loss(hiddens)
    return builder.finish(loss)
