"""TCN: a temporal convolutional network (conv-style model, section 6.7).

The paper's evaluation focuses on recurrent models, but section 6.7
argues the approach generalizes: "with faster hardware ... even
operations such as convolution become 'cheap' and hence would benefit
from techniques such as cross-layer fusion and using multiple streams."

This model exercises that claim.  Causal 1-D convolutions are lowered the
way frameworks actually execute them -- im2col + GEMM: at each step the
window ``[x_{t-k+1} .. x_t]`` is concatenated and multiplied by the
filter matrix.  All steps share the filter (a cross-step common-B fusion
group), adjacent layers stack with residual connections, and unlike the
RNNs there is **no recurrence**: every step of a layer is independent,
giving stream adaptation far more parallelism to harvest.
"""

from __future__ import annotations

from ..ir.trace import Var
from .cells import ModelBuilder, ModelConfig, TracedModel

DEFAULT_CONFIG = ModelConfig(
    hidden_size=512, embed_size=512, vocab_size=2000, num_layers=3
)

#: causal receptive field per layer
KERNEL_SIZE = 3


def build_tcn(config: ModelConfig = DEFAULT_CONFIG, kernel_size: int = KERNEL_SIZE) -> TracedModel:
    """Trace one training mini-batch of the TCN language model."""
    builder = ModelBuilder("tcn", config)
    tr = builder.tracer
    hidden = config.hidden_size

    with tr.scope("params"):
        layer_filters = []
        for layer in range(config.num_layers):
            in_dim = config.embed_size if layer == 0 else hidden
            layer_filters.append((
                tr.param((kernel_size * in_dim, hidden), label=f"conv{layer}_W"),
                tr.param((hidden,), label=f"conv{layer}_b"),
            ))

    xs = builder.token_inputs()
    current: list[Var] = list(xs)

    for layer, (w, b) in enumerate(layer_filters):
        next_steps: list[Var] = []
        for t in range(config.seq_len):
            with tr.scope(f"conv{layer}/step{t}"):
                # causal im2col window: pad the past with the first frame
                window = [current[max(0, t - offset)]
                          for offset in range(kernel_size - 1, -1, -1)]
                col = tr.concat(window, axis=1)
                pre = tr.add(tr.matmul(col, w), b)
                out = tr.relu(pre)
                if layer > 0:  # residual connection on same-width layers
                    out = tr.add(out, current[t])
                next_steps.append(out)
        current = next_steps

    loss = builder.lm_loss(current)
    return builder.finish(loss)
