"""GNMT: Google Neural Machine Translation (Wu et al. 2016), scaled down.

Encoder-decoder LSTM stacks with an attention module between them.  The
recurrent stacks are standard LSTM (cuDNN-coverable), but the attention
module is not -- which is why Table 6 shows cuDNN covering GNMT only
"mostly" and Astra closing the gap.  With multiple encoder and decoder
layers this is by far the deepest model in the zoo; the paper's Table 7
notes its exploration state space stays comparable to the small models
thanks to barrier exploration.
"""

from __future__ import annotations

from ..ir.trace import Tracer, Var
from .cells import ModelBuilder, ModelConfig, TracedModel
from .stacked_lstm import lstm_step, make_lstm_weights

#: scaled-down GNMT: 4 encoder + 4 decoder layers ("about 8x more layers"
#: than the single-layer cells, section 6.4), shared vocabulary
DEFAULT_CONFIG = ModelConfig(
    hidden_size=512, embed_size=512, vocab_size=2000, num_layers=4
)


def _attention(tr: Tracer, query: Var, keys: Var, values: Var, w_q: Var) -> Var:
    """Dot-product attention: softmax(q W_q K^T) V.

    ``keys``/``values`` are (S*B... ) -- here we use the batched 2-D
    formulation: keys is (S, B*H) reshaped per step; to stay within the
    2-D IR we compute scores per encoder step via GEMMs against the
    stacked encoder matrix (H, S).
    """
    projected = tr.matmul(query, w_q)  # (B, H)
    scores = tr.matmul(projected, keys)  # (B, S): keys is (H, S)
    weights = tr.softmax(scores)
    return tr.matmul(weights, values)  # (B, H): values is (S, H)


def build_gnmt(config: ModelConfig = DEFAULT_CONFIG) -> TracedModel:
    """Trace one training mini-batch of the GNMT translation model.

    Source and target sequences both have ``config.seq_len`` steps; the
    attention context is recomputed at every decoder step against all
    encoder outputs.
    """
    builder = ModelBuilder("gnmt", config)
    tr = builder.tracer
    cfg = config
    hidden = cfg.hidden_size
    enc_layers = dec_layers = cfg.num_layers

    with tr.scope("params"):
        enc_weights = [
            make_lstm_weights(tr, cfg.embed_size if l == 0 else hidden, hidden, f"enc{l}")
            for l in range(enc_layers)
        ]
        dec_weights = [
            make_lstm_weights(
                tr,
                (cfg.embed_size + hidden) if l == 0 else hidden,
                hidden,
                f"dec{l}",
            )
            for l in range(dec_layers)
        ]
        w_q = tr.param((hidden, hidden), label="attn_Wq")

    # -- encoder ----------------------------------------------------------
    src = builder.token_inputs()
    enc_states = [
        (builder.zeros_state(f"enc_h0_l{l}"), builder.zeros_state(f"enc_c0_l{l}"))
        for l in range(enc_layers)
    ]
    enc_outputs: list[Var] = []
    for t, x in enumerate(src):
        inp = x
        for l in range(enc_layers):
            with tr.scope(f"encoder{l}/step{t}"):
                h, c = lstm_step(tr, inp, *enc_states[l], enc_weights[l])
                enc_states[l] = (h, c)
                inp = h
        enc_outputs.append(inp)

    # memory for attention: keys (H, S) via transposes, values (S, H)
    with tr.scope("attention/memory"):
        # stack encoder outputs: each (B, H); attention works per example in
        # the batch -- we approximate with batch-pooled memory (mean over
        # batch), a standard trick to keep the traced graph 2-D
        pooled = [tr.scale(tr.reduce_sum(o, axis=0, keepdims=True), 1.0 / cfg.batch_size)
                  for o in enc_outputs]
        values = tr.concat(pooled, axis=0)  # (S, H)
        keys = tr.transpose(values)  # (H, S)

    # -- decoder ----------------------------------------------------------
    tgt_inputs = [
        tr.input((cfg.batch_size, cfg.embed_size), label=f"tgt{t}")
        for t in range(cfg.seq_len)
    ]
    dec_states = [
        (builder.zeros_state(f"dec_h0_l{l}"), builder.zeros_state(f"dec_c0_l{l}"))
        for l in range(dec_layers)
    ]
    context = builder.zeros_state("ctx0")

    hiddens: list[Var] = []
    for t, y in enumerate(tgt_inputs):
        with tr.scope(f"attention/step{t}"):
            inp = tr.concat([y, context], axis=1)
        for l in range(dec_layers):
            with tr.scope(f"decoder{l}/step{t}"):
                h, c = lstm_step(tr, inp, *dec_states[l], dec_weights[l])
                dec_states[l] = (h, c)
                inp = h
        with tr.scope(f"attention/step{t}"):
            context = _attention(tr, inp, keys, values, w_q)
        hiddens.append(inp)

    loss = builder.lm_loss(hiddens)
    return builder.finish(loss)
