#!/usr/bin/env python
"""Quickstart: optimize one training job with Astra.

Traces the SC-RNN language model (a long-tail cell cuDNN does not cover),
runs the full online exploration -- fusion chunking, kernel-library
selection, multi-stream scheduling and memory-allocation strategies, one
configuration per training mini-batch -- and reports the custom-wired
result against the native single-stream framework execution.

Run:  python examples/quickstart.py
"""

from repro import AstraSession
from repro.models import ModelConfig, build_scrnn


def main() -> None:
    # 1. trace one training mini-batch at fixed shapes (forward + loss +
    #    generated backward pass)
    config = ModelConfig(batch_size=16, seq_len=6, hidden_size=650,
                         embed_size=650, vocab_size=2000)
    model = build_scrnn(config)
    print(f"traced {model.name}: {len(model.graph)} nodes, "
          f"{len(model.graph.gemm_nodes())} GEMMs")

    # 2. optimize: the enumerator builds the update tree, the custom-wirer
    #    explores it online (each exploration config is still a real
    #    training mini-batch -- exploration is work-conserving)
    session = AstraSession(model, features="all")
    report = session.optimize()

    # 3. results
    astra = report.astra
    print(f"\nnative mini-batch:      {report.native_time_us / 1000:8.2f} ms")
    print(f"custom-wired mini-batch:{astra.best_time_us / 1000:8.2f} ms")
    print(f"speedup:                {report.speedup_over_native:8.2f} x")
    print(f"configurations explored:{astra.configs_explored:8d} mini-batches")
    print(f"profiling overhead:     {astra.profiling_overhead * 100:8.2f} %")
    print(f"best allocation:        {astra.best_strategy.label:>8s}")

    print("\nchosen configuration (first 10 adaptive variables):")
    for name, choice in list(astra.assignment.items())[:10]:
        print(f"  {name:60s} -> {choice}")


if __name__ == "__main__":
    main()
