#!/usr/bin/env python
"""The long-tail story: accelerate a *novel* cell nobody hand-optimized.

This example invents a recurrent cell that exists in no accelerator
library -- a "peephole-highway" hybrid with three gates, a highway skip
and a squared-ReLU nonlinearity -- exactly the kind of structure an AI
researcher tries during architecture search (paper section 1).  It then:

1. checks that the cuDNN-style accelerator has zero coverage (this is the
   long tail);
2. lets Astra custom-wire it, showing the fusion groups its enumerator
   discovered in a model it has never seen;
3. compares against the native framework and the XLA-style static
   compiler.

Run:  python examples/longtail_cell.py
"""

from repro import AstraSession
from repro.baselines import detect_lstm_steps, run_native, run_xla
from repro.gpu import P100
from repro.ir import Tracer, backward
from repro.models.cells import ModelBuilder, ModelConfig, TracedModel

CONFIG = ModelConfig(batch_size=16, seq_len=6, hidden_size=512,
                     embed_size=512, vocab_size=2000, use_embedding=False)


def build_peephole_highway(config: ModelConfig = CONFIG) -> TracedModel:
    """A made-up long-tail cell:

        r_t = sigmoid(x@Wr + h@Ur + c_{t-1}@Pr)      (peephole reset)
        z_t = sigmoid(x@Wz + h@Uz)                   (highway carry)
        u_t = relu(x@Wu + (r_t * h)@Uu)^2            (squared-relu update)
        c_t = z_t * c_{t-1} + (1 - z_t) * u_t
        h_t = z_t * h + (1 - z_t) * tanh(c_t)        (highway output)
    """
    builder = ModelBuilder("peephole_highway", config)
    tr = builder.tracer
    hid, emb = config.hidden_size, config.embed_size

    with tr.scope("params"):
        w_r, u_r, p_r = tr.param((emb, hid)), tr.param((hid, hid)), tr.param((hid, hid))
        w_z, u_z = tr.param((emb, hid)), tr.param((hid, hid))
        w_u, u_u = tr.param((emb, hid)), tr.param((hid, hid))

    xs = builder.token_inputs()
    h = builder.zeros_state("h0")
    c = builder.zeros_state("c0")

    hiddens = []
    for t, x in enumerate(xs):
        with tr.scope(f"layer0/step{t}"):
            r = tr.sigmoid(tr.add(tr.add(x @ w_r, h @ u_r), c @ p_r))
            z = tr.sigmoid(tr.add(x @ w_z, h @ u_z))
            pre = tr.relu(tr.add(x @ w_u, tr.mul(r, h) @ u_u))
            u = tr.mul(pre, pre)
            one_minus_z = tr.add_scalar(tr.scale(z, -1.0), 1.0)
            c = tr.add(tr.mul(z, c), tr.mul(one_minus_z, u))
            h = tr.add(tr.mul(z, h), tr.mul(one_minus_z, tr.tanh(c)))
            hiddens.append(h)

    loss = builder.lm_loss(hiddens)
    return builder.finish(loss)


def main() -> None:
    model = build_peephole_highway()
    print(f"traced novel cell: {len(model.graph)} nodes, "
          f"{len(model.graph.gemm_nodes())} GEMMs")

    # 1. the accelerator library has never seen this structure
    coverage = detect_lstm_steps(model.graph)
    print(f"cuDNN coverage: {coverage.fraction_of_gemms * 100:.0f}% of GEMMs "
          f"(long-tail: hand-optimized kernels do not apply)")

    # 2. baselines
    native = run_native(model.graph, P100).total_time_us
    xla = run_xla(model.graph, P100).total_time_us
    print(f"\nnative:   {native / 1000:7.2f} ms   1.00x")
    print(f"XLA-like: {xla / 1000:7.2f} ms   {native / xla:.2f}x (static elementwise fusion)")

    # 3. Astra discovers the structure by pattern matching + measurement
    session = AstraSession(model, features="all")
    fusion_groups = session.wirer.enumerator.analysis.groups
    print(f"\nenumerator found {len(fusion_groups)} fusion groups in the novel cell:")
    for group in fusion_groups[:6]:
        dims = group.launch_dims(group.members)
        print(f"  {group.group_id:48s} {group.size} members -> "
              f"fused GEMM {dims[0]}x{dims[1]}x{dims[2]}")

    report = session.optimize()
    print(f"\nAstra:    {report.best_time_us / 1000:7.2f} ms   "
          f"{report.speedup_over_native:.2f}x "
          f"({report.configs_explored} exploration mini-batches)")


if __name__ == "__main__":
    main()
