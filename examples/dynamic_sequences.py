#!/usr/bin/env python
"""Dynamic graphs: bucketed adaptation over variable sentence lengths.

PyTorch-style dynamic graphs change shape with the input, which breaks
the mini-batch predictability Astra relies on.  The paper's answer
(section 5.5): quantize input lengths into 5 buckets calibrated on the
dataset, explore each bucket independently (the bucket id becomes a
profile-index context prefix), and run each mini-batch at the nearest
larger bucket.

This example calibrates buckets on the synthetic PTB length distribution
(reproducing the paper's 13/18/24/30/83 boundaries), runs the bucketed
optimization for the subLSTM model, and compares steady-state throughput
against per-length dynamic execution.

Run:  python examples/dynamic_sequences.py
"""

from repro.core import run_bucketed
from repro.models import (
    PTB_LENGTHS,
    LengthDistribution,
    ModelConfig,
    build_sublstm,
    compute_buckets,
)


def main() -> None:
    # 1. bucket calibration on the dataset's length distribution
    lengths = PTB_LENGTHS.sample(5000, seed=0)
    buckets = compute_buckets(lengths, num_buckets=5)
    print(f"PTB length distribution: mean={lengths.mean():.1f}, max={lengths.max()}")
    print(f"calibrated buckets: {buckets}  (paper: (13, 18, 24, 30, 83))")

    # 2. bucketed optimization (scaled-down lengths keep the demo fast;
    #    quantile bucketing is scale-invariant)
    dist = LengthDistribution("ptb-demo", mean_log=1.9, sigma_log=0.55,
                              min_len=2, max_len=16)
    config = ModelConfig(batch_size=16, hidden_size=650, embed_size=650,
                         vocab_size=2000)
    report = run_bucketed(
        build_sublstm, config, dist,
        num_buckets=5, num_samples=80, features="FK",
    )

    # 3. results
    print(f"\ndemo buckets: {report.buckets}")
    for outcome in report.outcomes:
        print(f"  bucket <= {outcome.bound:3d} steps: best mini-batch "
              f"{outcome.best_time_us / 1000:6.2f} ms "
              f"({outcome.configs_explored} configs explored)")
    print(f"\nnative dynamic execution: {report.native_dynamic_us / 1000:6.2f} ms/mini-batch")
    print(f"Astra + bucketing:        {report.astra_bucketed_us / 1000:6.2f} ms/mini-batch")
    print(f"speedup:                  {report.speedup:6.2f} x  (paper Table 8: 1.4-2.5x)")
    print(f"padding overhead:         {report.padding_overhead * 100:6.1f} %  "
          f"(compute wasted by rounding lengths up)")


if __name__ == "__main__":
    main()
