#!/usr/bin/env python
"""Visualize what stream adaptation actually does to a schedule.

Renders the executed mini-batch as an ASCII Gantt chart before and after
Astra's stream phase (paper section 4.5.3-4.5.5): the single-stream
fusion-only plan vs the custom-wired multi-stream plan, with per-stream
utilization and the kernel-overlap fraction the epoch metric optimizes.

Run:  python examples/visualize_streams.py
"""

from repro import AstraSession
from repro.gpu import P100
from repro.models import ModelConfig, build_sublstm
from repro.runtime import Executor, TimelineOptions, overlap_fraction, render_timeline, utilization


def show(title: str, result) -> None:
    result = result.raw  # the simulator's per-kernel records
    print(f"\n== {title}")
    print(render_timeline(result, TimelineOptions(width=96)))
    util = utilization(result)
    print("utilization: " + ", ".join(
        f"stream{s}: {u * 100:.0f}%" for s, u in util.items()
    ))
    print(f"kernel overlap: {overlap_fraction(result) * 100:.0f}% of wall time")


def main() -> None:
    config = ModelConfig(batch_size=16, seq_len=4, hidden_size=650,
                         embed_size=650, vocab_size=2000)
    model = build_sublstm(config)
    executor = Executor(model.graph, P100)

    fk = AstraSession(model, features="FK", seed=1).optimize()
    fks = AstraSession(model, features="FKS", seed=1).optimize()

    show("Astra_FK: fusion + kernel selection, single stream",
         executor.run(fk.astra.best_plan))
    show("Astra_FKS: + stream adaptation (barrier/prefix exploration)",
         executor.run(fks.astra.best_plan))

    print(f"\nmini-batch: {fk.best_time_us / 1000:.2f} ms -> "
          f"{fks.best_time_us / 1000:.2f} ms "
          f"({fk.best_time_us / fks.best_time_us:.2f}x from streams)")


if __name__ == "__main__":
    main()
