#!/usr/bin/env python
"""Side-by-side: native framework, XLA-style static compilation,
cuDNN-style hand-optimized kernels, and Astra, across the model zoo.

Reproduces the paper's central narrative in one sweep:

* on *popular* structures (stacked LSTM, most of GNMT), cuDNN is strong
  and Astra matches or beats it;
* on *long-tail* cells (SC-RNN, MI-LSTM, subLSTM), cuDNN does not apply,
  XLA helps only modestly (and actively hurts once embeddings are
  involved), while Astra's measurement-driven adaptation delivers.

Run:  python examples/compare_baselines.py
"""

from repro import AstraSession
from repro.baselines import (
    cudnn_applicable,
    detect_lstm_steps,
    run_cudnn,
    run_native,
    run_xla,
)
from repro.gpu import P100
from repro.models import MODEL_BUILDERS
import repro.models.scrnn as scrnn
import repro.models.milstm as milstm
import repro.models.sublstm as sublstm
import repro.models.stacked_lstm as stacked
import repro.models.gnmt as gnmt
import repro.models.rhn as rhn
import repro.models.attn_lstm as attn_lstm
import repro.models.tcn as tcn
from repro.models import EXTRA_BUILDERS

CONFIGS = {
    "scrnn": scrnn.DEFAULT_CONFIG,
    "milstm": milstm.DEFAULT_CONFIG,
    "sublstm": sublstm.DEFAULT_CONFIG,
    "stacked_lstm": stacked.DEFAULT_CONFIG,
    "gnmt": gnmt.DEFAULT_CONFIG,
    "rhn": rhn.DEFAULT_CONFIG,
    "attn_lstm": attn_lstm.DEFAULT_CONFIG,
    "tcn": tcn.DEFAULT_CONFIG,
}

BATCH = 16


def main() -> None:
    header = f"{'model':14s} {'native':>9s} {'XLA':>7s} {'cuDNN':>7s} {'Astra':>7s}  notes"
    print(header)
    print("-" * len(header))
    for name, config in CONFIGS.items():
        seq = 4 if name == "gnmt" else 5
        builder = MODEL_BUILDERS.get(name) or EXTRA_BUILDERS[name]
        model = builder(
            config.scaled(batch_size=BATCH, seq_len=seq, use_embedding=False)
        )
        native = run_native(model.graph, P100).total_time_us
        xla = run_xla(model.graph, P100).total_time_us
        coverage = detect_lstm_steps(model.graph)
        cudnn_col = "n/a"
        if cudnn_applicable(model.graph):
            cudnn = run_cudnn(model.graph, P100).total_time_us
            cudnn_col = f"{native / cudnn:.2f}x"
        report = AstraSession(model, features="all").optimize()
        note = f"cuDNN covers {coverage.fraction_of_gemms * 100:.0f}% of GEMMs"
        print(
            f"{name:14s} {native / 1000:7.2f}ms {native / xla:6.2f}x "
            f"{cudnn_col:>7s} {report.speedup_over_native:6.2f}x  {note}"
        )

    print("\n(embedding pathology) XLA on the *with-embedding* models:")
    for name in ("scrnn", "sublstm"):
        model = MODEL_BUILDERS[name](CONFIGS[name].scaled(batch_size=BATCH, seq_len=5))
        native = run_native(model.graph, P100).total_time_us
        xla = run_xla(model.graph, P100).total_time_us
        print(f"  {name:10s}: XLA {native / xla:.2f}x vs native "
              f"(slower -- host/device transitions around lookups)")


if __name__ == "__main__":
    main()
