"""Section 7 ablation: predictable execution is a hardware requirement.

The paper sets the GPU to base clock because autoboost jitter breaks
fine-grained profiling.  This bench runs the same exploration on a
deterministic device and on an autoboost-jittery one, then evaluates both
final plans on the deterministic device: the jittery exploration picks a
plan that is no better, and its repeated measurements disagree run to run.
"""

from harness import build_model, emit
from repro import AstraSession
from repro.gpu import CLOCK_AUTOBOOST, P100, GemmLaunch, HostSyncItem, LaunchItem, StreamSimulator
from repro.runtime import Executor


def build_table():
    model = build_model("sublstm", 16)
    base = AstraSession(model, features="FK", seed=5).optimize()
    jittery = AstraSession(
        model, device=P100.with_clock(CLOCK_AUTOBOOST), features="FK", seed=5
    ).optimize()

    executor = Executor(model.graph, P100)
    base_eval = executor.run(base.astra.best_plan).total_time_us
    jitter_eval = executor.run(jittery.astra.best_plan).total_time_us

    # measurement repeatability: the same kernel measured twice
    items = [LaunchItem(GemmLaunch(64, 650, 2600, "cublas"), 0), HostSyncItem()]
    det = StreamSimulator(P100, seed=0)
    boost = StreamSimulator(P100.with_clock(CLOCK_AUTOBOOST), seed=0)
    det_pair = (det.run(items).total_time_us, det.run(items).total_time_us)
    boost_pair = (boost.run(items).total_time_us, boost.run(items).total_time_us)

    return {
        "base_clock_plan_us": base_eval,
        "autoboost_plan_us": jitter_eval,
        "degradation": jitter_eval / base_eval,
        "deterministic_repeat": det_pair,
        "autoboost_repeat": boost_pair,
    }


def test_ablation_predictability(table_benchmark):
    payload = table_benchmark(build_table)
    rows = [
        ["plan found at base clock", f"{payload['base_clock_plan_us']:.0f}us"],
        ["plan found under autoboost", f"{payload['autoboost_plan_us']:.0f}us"],
        ["degradation", f"{payload['degradation']:.3f}x"],
        ["repeatability (base)", f"{payload['deterministic_repeat'][0]:.1f} vs {payload['deterministic_repeat'][1]:.1f}"],
        ["repeatability (boost)", f"{payload['autoboost_repeat'][0]:.1f} vs {payload['autoboost_repeat'][1]:.1f}"],
    ]
    emit(
        "Ablation (section 7): base clock vs autoboost",
        ["measurement", "value"],
        rows,
        "ablation_predictability",
        payload,
    )
    # deterministic measurements repeat exactly; autoboost ones do not
    assert payload["deterministic_repeat"][0] == payload["deterministic_repeat"][1]
    assert payload["autoboost_repeat"][0] != payload["autoboost_repeat"][1]
    # the jitter-found plan is no better than the base-clock plan
    assert payload["degradation"] >= 0.999
