"""Section 3.4 extension: data-parallel degree chosen by measurement.

"Depending on the communication cost of the model and the physical
characteristics of the network, the choice of ideal degree of parallelism
... could be taken in an automated manner with runtime measurement and
adaptation."  This bench measures subLSTM scaling over PCIe and NVLink
fabrics: the best degree differs per fabric, which is exactly why a
static choice is wrong.
"""

from harness import DEFAULT_CONFIGS, emit
from repro.distributed import NVLINK, PCIE, choose_parallelism, choose_partitioning
from repro.fleet import get_fleet, run_fleet_search
from repro.models import build_scrnn, build_stacked_lstm, build_sublstm


def build_table():
    config = DEFAULT_CONFIGS["sublstm"].scaled(batch_size=128, seq_len=5)
    payload = {}
    for fabric in (PCIE, NVLINK):
        ms = choose_parallelism(
            build_sublstm, config, degrees=(1, 2, 4, 8), interconnect=fabric
        )
        payload[fabric.name] = [
            {
                "world": m.world,
                "per_sample_us": m.per_sample_us,
                "exposed_comm_us": m.exposed_comm_us,
                "efficiency": m.scaling_efficiency,
            }
            for m in sorted(ms, key=lambda m: m.world)
        ]
        payload[fabric.name + "_best"] = ms[0].world

    # model partitioning: data vs pipeline at world=2 on a 4-layer stack
    deep = DEFAULT_CONFIGS["stacked_lstm"].scaled(
        batch_size=32, seq_len=4, num_layers=4
    )
    decisions = choose_partitioning(build_stacked_lstm, deep, world=2)
    payload["partitioning"] = [
        {"kind": d.kind, "per_sample_us": d.per_sample_us} for d in decisions
    ]

    # heterogeneous fleet: the exhaustive sweep over a mixed 2xP100+2xV100
    # NVLink fleet finds a weighted-split winner that no homogeneous subset
    # matches at full batch
    fleet = get_fleet("hetero")
    scrnn = DEFAULT_CONFIGS["scrnn"].scaled(batch_size=256, seq_len=5)
    report = run_fleet_search(
        build_scrnn, scrnn, fleet, model_name="scrnn", exhaustive=True
    )
    payload["fleet"] = {
        "model": "scrnn",
        "batch": scrnn.batch_size,
        "fleet": report.fleet,
        "winner": report.winner.label,
        "winner_hetero": report.hetero_winner,
        "winner_per_sample_us": report.winner_per_sample_us,
        "best_homogeneous": report.best_homogeneous_label,
        "best_homogeneous_us": report.best_homogeneous_us,
        "strategies": [
            {
                "label": row["label"],
                "kind": row["kind"],
                "heterogeneous": row["heterogeneous"],
                "per_sample_us": row["per_sample_us"],
            }
            for row in report.table
        ],
    }

    # the same fleet on a deep stack enumerates pipeline cuts alongside
    # data-parallel strategies -- both kinds land in one adaptive variable
    deep_report = run_fleet_search(
        build_stacked_lstm,
        deep,
        fleet,
        model_name="stacked_lstm",
        exhaustive=True,
        microbatches=4,
    )
    payload["fleet_partitioning"] = {
        "model": "stacked_lstm",
        "winner": deep_report.winner.label,
        "winner_kind": deep_report.winner.kind,
        "strategies": [
            {
                "label": row["label"],
                "kind": row["kind"],
                "per_sample_us": row["per_sample_us"],
            }
            for row in deep_report.table
        ],
    }
    return payload


def test_ablation_multigpu(table_benchmark):
    payload = table_benchmark(build_table)
    rows = []
    for fabric in ("pcie", "nvlink"):
        for m in payload[fabric]:
            rows.append([
                fabric, m["world"], f"{m['per_sample_us']:.1f}",
                f"{m['exposed_comm_us']:.0f}us", f"{m['efficiency']:.2f}",
            ])
    emit(
        "Ablation (section 3.4): data-parallel degree by measurement",
        ["fabric", "GPUs", "us/sample", "exposed comm", "efficiency"],
        rows,
        "ablation_multigpu",
        payload,
    )
    rows2 = [
        ["(partitioning)", d["kind"], f"{d['per_sample_us']:.1f}", "-", "-"]
        for d in payload["partitioning"]
    ]
    for s in payload["fleet_partitioning"]["strategies"]:
        us = s["per_sample_us"]
        rows2.append([
            "(hetero fleet)", s["kind"],
            f"{us:.1f}" if us is not None else "-", s["label"], "-",
        ])
    emit(
        "Ablation (section 6.7): data vs pipeline partitioning at world=2",
        ["fabric", "kind", "us/sample", "-", "-"],
        rows2,
        "ablation_partitioning",
        {
            "world2": payload["partitioning"],
            "hetero_fleet": payload["fleet_partitioning"],
        },
    )
    fleet = payload["fleet"]
    rows3 = [
        [
            s["kind"], "hetero" if s["heterogeneous"] else "homo",
            f"{s['per_sample_us']:.3f}" if s["per_sample_us"] is not None else "-",
            s["label"],
        ]
        for s in fleet["strategies"]
    ]
    emit(
        f"Ablation (hetero fleet): scrnn@{fleet['batch']} on {fleet['fleet']}",
        ["kind", "mix", "us/sample", "strategy"],
        rows3,
        "ablation_fleet",
        fleet,
    )
    # communication-bound on PCIe caps scaling earlier than NVLink
    assert payload["nvlink_best"] >= payload["pcie_best"]
    # efficiency decays with world size on the slower fabric
    pcie_eff = [m["efficiency"] for m in payload["pcie"]]
    assert pcie_eff[-1] < pcie_eff[0] * 1.5
    # both partitioning kinds measured; ordering by measured time
    kinds = [d["kind"] for d in payload["partitioning"]]
    assert set(kinds) == {"data", "pipeline"}
    # the mixed fleet's winner uses both device classes and beats every
    # homogeneous placement at full batch
    assert fleet["winner_hetero"], fleet["winner"]
    assert fleet["winner_per_sample_us"] < fleet["best_homogeneous_us"]
    # the deep stack enumerates both partitioning kinds in one variable
    fleet_kinds = {s["kind"] for s in payload["fleet_partitioning"]["strategies"]}
    assert fleet_kinds == {"data", "pipeline"}
