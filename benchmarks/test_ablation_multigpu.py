"""Section 3.4 extension: data-parallel degree chosen by measurement.

"Depending on the communication cost of the model and the physical
characteristics of the network, the choice of ideal degree of parallelism
... could be taken in an automated manner with runtime measurement and
adaptation."  This bench measures subLSTM scaling over PCIe and NVLink
fabrics: the best degree differs per fabric, which is exactly why a
static choice is wrong.
"""

from harness import DEFAULT_CONFIGS, emit
from repro.distributed import NVLINK, PCIE, choose_parallelism, choose_partitioning
from repro.models import build_stacked_lstm, build_sublstm


def build_table():
    config = DEFAULT_CONFIGS["sublstm"].scaled(batch_size=128, seq_len=5)
    payload = {}
    for fabric in (PCIE, NVLINK):
        ms = choose_parallelism(
            build_sublstm, config, degrees=(1, 2, 4, 8), interconnect=fabric
        )
        payload[fabric.name] = [
            {
                "world": m.world,
                "per_sample_us": m.per_sample_us,
                "exposed_comm_us": m.exposed_comm_us,
                "efficiency": m.scaling_efficiency,
            }
            for m in sorted(ms, key=lambda m: m.world)
        ]
        payload[fabric.name + "_best"] = ms[0].world

    # model partitioning: data vs pipeline at world=2 on a 4-layer stack
    deep = DEFAULT_CONFIGS["stacked_lstm"].scaled(
        batch_size=32, seq_len=4, num_layers=4
    )
    decisions = choose_partitioning(build_stacked_lstm, deep, world=2)
    payload["partitioning"] = [
        {"kind": d.kind, "per_sample_us": d.per_sample_us} for d in decisions
    ]
    return payload


def test_ablation_multigpu(table_benchmark):
    payload = table_benchmark(build_table)
    rows = []
    for fabric in ("pcie", "nvlink"):
        for m in payload[fabric]:
            rows.append([
                fabric, m["world"], f"{m['per_sample_us']:.1f}",
                f"{m['exposed_comm_us']:.0f}us", f"{m['efficiency']:.2f}",
            ])
    emit(
        "Ablation (section 3.4): data-parallel degree by measurement",
        ["fabric", "GPUs", "us/sample", "exposed comm", "efficiency"],
        rows,
        "ablation_multigpu",
        payload,
    )
    rows2 = [
        ["(partitioning)", d["kind"], f"{d['per_sample_us']:.1f}", "-", "-"]
        for d in payload["partitioning"]
    ]
    emit(
        "Ablation (section 6.7): data vs pipeline partitioning at world=2",
        ["fabric", "kind", "us/sample", "-", "-"],
        rows2,
        "ablation_partitioning",
        payload["partitioning"],
    )
    # communication-bound on PCIe caps scaling earlier than NVLink
    assert payload["nvlink_best"] >= payload["pcie_best"]
    # efficiency decays with world size on the slower fabric
    pcie_eff = [m["efficiency"] for m in payload["pcie"]]
    assert pcie_eff[-1] < pcie_eff[0] * 1.5
    # both partitioning kinds measured; ordering by measured time
    kinds = [d["kind"] for d in payload["partitioning"]]
    assert set(kinds) == {"data", "pipeline"}
