"""Table 2: SC-RNN speedup over native PyTorch by mini-batch size.

Paper (P100): Astra_F 1.65/1.65/1.49/1.20/1.03/0.98, Astra_FKS
2.13/2.11/1.72/1.42/1.19/1.10, Astra_all 2.27/2.22/1.81/1.49/1.20/1.12
for batches 8/16/32/64/128/256.  Reproduction targets: largest speedups
at small batch decaying toward ~1 at 256; streams add on top of F/FK;
`all` >= FKS.
"""

from harness import VARIANTS, bench_batches, emit, speedup_table


def test_table2_scrnn(table_benchmark):
    rows_data = table_benchmark(speedup_table, "scrnn")
    rows = [
        [batch] + [f"{rows_data[batch][v]['speedup']:.2f}" for v in VARIANTS]
        for batch in rows_data
    ]
    emit(
        "Table 2: SC-RNN speedup vs native (paper F: 1.65..0.98, all: 2.27..1.12)",
        ["batch"] + [f"Astra_{v}" for v in VARIANTS],
        rows,
        "table2_scrnn",
        rows_data,
    )
    batches = list(rows_data)
    first, last = batches[0], batches[-1]
    # shape checks: decay with batch, ordering of variants
    assert rows_data[first]["F"]["speedup"] > rows_data[last]["F"]["speedup"]
    assert rows_data[first]["all"]["speedup"] > 1.3
    for batch in batches:
        entry = rows_data[batch]
        assert entry["FKS"]["speedup"] >= entry["FK"]["speedup"] * 0.99
        assert entry["all"]["speedup"] >= entry["FKS"]["speedup"] * 0.99
