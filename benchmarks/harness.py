"""Shared infrastructure for the table/figure reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation (section 6) on the simulated P100:

* rows/series are printed in the paper's layout (speedups relative to the
  same baseline the paper normalizes to);
* raw numbers are also dumped to ``benchmarks/results/<name>.json`` so
  EXPERIMENTS.md can cite them;
* absolute times are simulator microseconds -- the claim under test is
  the *shape* (who wins, by what factor, where crossovers fall), not the
  authors' testbed numbers.

Set ``REPRO_BENCH_BATCHES`` (comma-separated) to override the batch-size
sweep, e.g. ``REPRO_BENCH_BATCHES=8,32`` for a quick pass.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import AstraSession
from repro.baselines import run_cudnn, run_native, run_xla
from repro.gpu import P100
from repro.models import MODEL_BUILDERS
from repro.perf import PhaseClock

RESULTS_DIR = Path(__file__).parent / "results"

#: the paper's mini-batch sweep (section 6.1)
PAPER_BATCHES = (8, 16, 32, 64, 128, 256)

#: sequence length used for the sweeps; the paper does not report one, and
#: speedups are insensitive to it beyond a few steps (costs scale per step)
BENCH_SEQ_LEN = 5

#: Astra variants in table-column order
VARIANTS = ("F", "FK", "FKS", "all")

DEFAULT_CONFIGS = {
    "scrnn": __import__("repro.models.scrnn", fromlist=["DEFAULT_CONFIG"]).DEFAULT_CONFIG,
    "milstm": __import__("repro.models.milstm", fromlist=["DEFAULT_CONFIG"]).DEFAULT_CONFIG,
    "sublstm": __import__("repro.models.sublstm", fromlist=["DEFAULT_CONFIG"]).DEFAULT_CONFIG,
    "stacked_lstm": __import__(
        "repro.models.stacked_lstm", fromlist=["DEFAULT_CONFIG"]
    ).DEFAULT_CONFIG,
    "gnmt": __import__("repro.models.gnmt", fromlist=["DEFAULT_CONFIG"]).DEFAULT_CONFIG,
}


def bench_batches() -> tuple[int, ...]:
    override = os.environ.get("REPRO_BENCH_BATCHES")
    if override:
        return tuple(int(x) for x in override.split(","))
    return PAPER_BATCHES


def build_model(name: str, batch_size: int, seq_len: int = BENCH_SEQ_LEN, **overrides):
    config = DEFAULT_CONFIGS[name].scaled(
        batch_size=batch_size, seq_len=seq_len, **overrides
    )
    return MODEL_BUILDERS[name](config)


def astra_times(model, variants=VARIANTS, seed=1, max_minibatches=3000):
    """Best mini-batch time and exploration size per Astra variant.

    Each variant run gets its *own* :class:`~repro.perf.PhaseClock`, so
    one variant's time can never bleed into another's, and within a run
    every phase (enumerate / prerank / lower / validate / simulate /
    explore) is timed by its own exclusive context -- the per-phase
    seconds sum to the measured wall clock (pinned by the harness-timing
    regression test).
    """
    out = {}
    for preset in variants:
        clock = PhaseClock()
        start = time.perf_counter()
        with clock.phase("other"):
            report = AstraSession(model, features=preset, seed=seed,
                                  clock=clock).optimize(
                max_minibatches=max_minibatches
            )
        wall_s = time.perf_counter() - start
        out[preset] = {
            "best_us": report.best_time_us,
            "native_us": report.native_time_us,
            "speedup": report.speedup_over_native,
            "configs": report.configs_explored,
            "overhead": report.astra.profiling_overhead,
            "wall_s": wall_s,
            "phases_s": dict(sorted(clock.seconds.items())),
        }
    return out


def speedup_table(name: str, variants=VARIANTS, batches=None, seq_len=BENCH_SEQ_LEN):
    """Rows of a Table 2/3/4-style sweep: speedup vs native per variant."""
    rows = {}
    for batch in batches or bench_batches():
        model = build_model(name, batch, seq_len)
        rows[batch] = astra_times(model, variants)
    return rows


def cudnn_table(name: str, variants=("F", "FK", "all"), batches=None,
                seq_len=BENCH_SEQ_LEN):
    """Rows of a Table 5/6-style sweep: everything relative to cuDNN."""
    rows = {}
    for batch in batches or bench_batches():
        model = build_model(name, batch, seq_len)
        native = run_native(model.graph, P100).total_time_us
        cudnn = run_cudnn(model.graph, P100).total_time_us
        entry = {"native_us": native, "cudnn_us": cudnn, "pyt_rel": cudnn / native}
        for preset, data in astra_times(model, variants).items():
            entry[preset] = {
                "best_us": data["best_us"],
                "rel_cudnn": cudnn / data["best_us"],
            }
        rows[batch] = entry
    return rows


def format_table(title: str, header: list[str], rows: list[list]) -> str:
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_results(name: str, payload) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)


def emit(title: str, header: list[str], rows: list[list], name: str, payload) -> str:
    text = format_table(title, header, rows)
    print("\n" + text)
    save_results(name, payload)
    return text
