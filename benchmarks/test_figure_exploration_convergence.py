"""Work-conserving exploration (section 4.2): the cost of being adaptive.

Not a numbered figure in the paper, but its central operational claim:
"a small number (e.g., a few thousand out of millions) of mini-batches is
used for exploration while still making useful training progress."  This
bench records the per-mini-batch times of the whole exploration and
reports (a) how much slower exploration is than native on average, and
(b) the break-even point after which the custom-wired plan has repaid the
entire exploration overhead.
"""

from harness import build_model, emit
from repro import AstraSession


def build_table():
    payload = {}
    for name in ("scrnn", "sublstm"):
        model = build_model(name, 16)
        report = AstraSession(model, features="FKS", seed=1).optimize()
        astra = report.astra
        am = astra.amortization(report.native_time_us)
        times = [t for _p, t in astra.timeline]
        payload[name] = {
            "exploration_minibatches": am.exploration_minibatches,
            "mean_exploration_vs_native": (sum(times) / len(times)) / report.native_time_us,
            "worst_exploration_vs_native": max(times) / report.native_time_us,
            "overhead_vs_native_us": am.overhead_vs_native_us,
            "breakeven_minibatches": am.breakeven_minibatches,
            "final_speedup": report.speedup_over_native,
        }
    return payload


def test_figure_exploration_convergence(table_benchmark):
    payload = table_benchmark(build_table)
    rows = []
    for name, entry in payload.items():
        rows.append([
            name,
            entry["exploration_minibatches"],
            f"{entry['mean_exploration_vs_native']:.2f}x",
            f"{entry['worst_exploration_vs_native']:.2f}x",
            f"{entry['breakeven_minibatches']:.0f}",
            f"{entry['final_speedup']:.2f}x",
        ])
    emit(
        "Work-conserving exploration: cost and break-even (section 4.2)",
        ["model", "explore batches", "mean vs native", "worst vs native",
         "breakeven batches", "final speedup"],
        rows,
        "figure_exploration_convergence",
        payload,
    )
    for entry in payload.values():
        # the average exploration mini-batch is no slower than native --
        # exploration is essentially free training
        assert entry["mean_exploration_vs_native"] < 1.5
        # a handful of deliberately-bad configs spike (that is the state
        # space doing its job), each visited exactly once
        assert entry["worst_exploration_vs_native"] < 30.0
        # and the overhead is repaid within a vanishing fraction of a
        # training job's millions of mini-batches
        assert entry["breakeven_minibatches"] < 5000
