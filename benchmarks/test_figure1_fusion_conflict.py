"""Figure 1 + the section 3.2 measurements.

Figure 1 shows two sets of GEMMs in the SC-RNN backward pass whose fusion
requires conflicting tensor allocations; section 3.2 adds the measurement
that two 256x1024x1024 GEMMs on two streams (172us) beat the fused
512-GEMM (211us).  This bench reproduces both: the conflict structure on
the real SC-RNN trace, and the parallel-vs-fused crossover.
"""

from harness import build_model, emit
from repro.core import analyse_fusion
from repro.core.fusion import resolve_static_conflicts
from repro.gpu import GemmLaunch, HostSyncItem, LaunchItem, P100, StreamSimulator


def run(items):
    return StreamSimulator(P100).run(items).total_time_us


def build_figure():
    payload = {}

    # (a) conflicting allocation requirements in the SC-RNN backward pass
    model = build_model("scrnn", 32)
    analysis = resolve_static_conflicts(analyse_fusion(model.graph))
    reqs = [g.requirement for g in analysis.groups if g.requirement]
    reqs += analysis.ladder_requirements
    conflicts = []
    for i, a in enumerate(reqs):
        for b in reqs[i + 1:]:
            if a.conflicts_with(b):
                conflicts.append((a.label, a.tag, b.label, b.tag,
                                  sorted(a.all_tensors() & b.all_tensors())))
    payload["conflicts"] = conflicts

    # (b) fused vs parallel-streams vs sequential (section 3.2)
    g256 = lambda: GemmLaunch(256, 1024, 1024, "cublas")
    payload["sequential_us"] = run(
        [LaunchItem(g256(), 0), LaunchItem(g256(), 0), HostSyncItem()]
    )
    payload["parallel_us"] = run(
        [LaunchItem(g256(), 0), LaunchItem(g256(), 1), HostSyncItem()]
    )
    payload["fused_us"] = run(
        [LaunchItem(GemmLaunch(512, 1024, 1024, "cublas"), 0), HostSyncItem()]
    )
    return payload


def test_figure1(table_benchmark):
    payload = table_benchmark(build_figure)
    rows = [
        ["two GEMMs, one stream", f"{payload['sequential_us']:.0f}us"],
        ["two GEMMs, two streams", f"{payload['parallel_us']:.0f}us  (paper: 172us)"],
        ["fused 512-GEMM", f"{payload['fused_us']:.0f}us  (paper: 211us)"],
        ["conflicting requirement pairs in SC-RNN bwd", str(len(payload["conflicts"]))],
    ]
    emit(
        "Figure 1 / section 3.2: conflicting fusion choices and the "
        "parallel-vs-fused crossover",
        ["measurement", "value"],
        rows,
        "figure1_fusion_conflict",
        payload,
    )
    # the paper's crossover: parallel < fused < sequential
    assert payload["parallel_us"] < payload["fused_us"] < payload["sequential_us"]
    # Figure 1's subject: conflicting fusion/allocation choices exist in
    # the SC-RNN backward pass
    assert len(payload["conflicts"]) >= 1
    assert any("backward" in c[0] or "backward" in c[2] for c in payload["conflicts"])
