"""Figure 2: the Astra exploration hierarchy.

The figure shows the update tree: super-epochs explored in parallel
(barrier exploration), epochs within a super-epoch explored prefix-wise,
stream assignments within an epoch, and fusion/kernel variables.  This
bench renders the same structure for the SC-RNN trace and checks its
shape properties.
"""

from harness import build_model, emit, save_results
from repro.core import AstraFeatures, Enumerator, count_configurations
from repro.gpu import P100


def build_figure():
    model = build_model("scrnn", 16)
    enum = Enumerator(model.graph, P100, AstraFeatures.preset("FKS"))
    strategy = enum.strategies[0]
    fk_tree = enum.build_fk_tree(strategy)
    partition, stream_tree = enum.prepare_stream_phase(
        strategy, fk_tree.assignment()
    )

    lines = ["Astra exploration (SC-RNN):"]
    lines.append(f"+ allocation strategies: {len(enum.strategies)} (hierarchical fork)")
    lines.append(f"+ fk phase [parallel] <= {count_configurations(fk_tree)} trials")
    fusion_vars = [v for v in fk_tree.variables() if v.name.startswith("fusion:")]
    kernel_vars = [v for v in fk_tree.variables() if v.name.startswith("kernel:")]
    lines.append(f"|   fusion groups: {len(fusion_vars)} "
                 f"(chunk x library choices each)")
    lines.append(f"|   kernel shapes: {len(kernel_vars)} (library choices each)")
    lines.append(f"+ stream phase [parallel over {len(stream_tree.children)} "
                 f"super-epochs] <= {count_configurations(stream_tree)} trials")
    for child in stream_tree.children[:4]:
        sizes = [len(v.choices) for v in child.variables()]
        lines.append(
            f"|   {child.name} [prefix over {len(child.children)} epochs]: "
            f"options per epoch {sizes[:8]}{'...' if len(sizes) > 8 else ''}"
        )
    lines.append(f"  super-epochs: {partition.num_super_epochs}, "
                 f"epochs: {len(partition.epochs)}, "
                 f"barriers: {len(partition.barrier_units())}")

    payload = {
        "strategies": len(enum.strategies),
        "fk_trials_bound": count_configurations(fk_tree),
        "fusion_vars": len(fusion_vars),
        "kernel_vars": len(kernel_vars),
        "super_epochs": partition.num_super_epochs,
        "epochs": len(partition.epochs),
        "stream_trials_bound": count_configurations(stream_tree),
        "rendering": lines,
    }
    return payload


def test_figure2(table_benchmark):
    payload = table_benchmark(build_figure)
    print("\n" + "\n".join(payload["rendering"]))
    save_results("figure2_exploration_tree", payload)
    # shape properties of the hierarchy
    assert payload["fusion_vars"] >= 3
    assert payload["super_epochs"] >= 1
    assert payload["epochs"] > payload["super_epochs"]
    # parallel pruning: the trial bound is far below the exhaustive product
    assert payload["fk_trials_bound"] < 200
    assert payload["stream_trials_bound"] < 2000
