"""Section 6.7 discussion: portability to new hardware.

"As model structures and GPU architectures evolve, all one needs to do is
add to the library of exploration, and models get automatic robust
speedup without any need for hand-optimization or parameter tuning."
This bench re-runs the subLSTM sweep on the V100 profile: no code or
cost-model changes, the same enumerator/wirer, and the speedups *grow*
(faster hardware makes more operations launch-bound, section 6.7).
"""

from harness import build_model, emit
from repro import AstraSession
from repro.gpu import P100, V100


def build_table():
    payload = {}
    for batch in (8, 32, 128):
        model = build_model("sublstm", batch)
        entry = {}
        for device in (P100, V100):
            rep = AstraSession(model, device=device, features="FKS", seed=1).optimize()
            entry[device.name] = {
                "speedup": rep.speedup_over_native,
                "best_us": rep.best_time_us,
            }
        payload[batch] = entry
    return payload


def test_ablation_v100(table_benchmark):
    payload = table_benchmark(build_table)
    rows = [
        [batch,
         f"{payload[batch]['P100']['speedup']:.2f}",
         f"{payload[batch]['V100']['speedup']:.2f}"]
        for batch in payload
    ]
    emit(
        "Ablation (section 6.7): the same adaptation on a newer device",
        ["batch", "P100 speedup", "V100 speedup"],
        rows,
        "ablation_v100",
        payload,
    )
    for batch, entry in payload.items():
        assert entry["V100"]["best_us"] < entry["P100"]["best_us"]
        assert entry["V100"]["speedup"] >= 1.0
    # faster device -> ops are relatively more launch-bound -> adaptation
    # matters at least as much at small batch
    assert payload[8]["V100"]["speedup"] >= payload[8]["P100"]["speedup"] * 0.9
