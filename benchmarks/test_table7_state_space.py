"""Table 7: size of the exploration state space post-pruning.

Paper: 303-3207 configurations for Astra_FKS and 1191-9303 for Astra_all
across the five models; GNMT's space stays comparable to the small models
despite ~8x more layers (barrier exploration parallelizes super-epochs).
Also section 6.4: profiling overhead < 0.5%, so it can be always on.
"""

from harness import DEFAULT_CONFIGS, MODEL_BUILDERS, emit
from repro import AstraSession

MODELS = ("scrnn", "stacked_lstm", "milstm", "sublstm", "gnmt")


def build_table():
    payload = {}
    for name in MODELS:
        seq = 4 if name == "gnmt" else 5
        config = DEFAULT_CONFIGS[name].scaled(batch_size=16, seq_len=seq)
        model = MODEL_BUILDERS[name](config)
        entry = {}
        for preset in ("FKS", "all"):
            rep = AstraSession(model, features=preset, seed=1).optimize()
            entry[preset] = {
                "configs": rep.configs_explored,
                "overhead": rep.astra.profiling_overhead,
                "profile_entries": rep.astra.astra_profile_entries
                if hasattr(rep.astra, "astra_profile_entries")
                else rep.astra.profile_entries,
            }
        payload[name] = entry
    return payload


def test_table7(table_benchmark):
    payload = table_benchmark(build_table)
    rows = [
        [name, payload[name]["FKS"]["configs"], payload[name]["all"]["configs"],
         f"{payload[name]['all']['overhead'] * 100:.2f}%"]
        for name in MODELS
    ]
    emit(
        "Table 7: configurations explored post-pruning "
        "(paper FKS: 303..3207, all: 1191..9303; overhead <0.5%)",
        ["model", "Astra_FKS", "Astra_all", "profiling overhead"],
        rows,
        "table7_state_space",
        payload,
    )
    for name in MODELS:
        fks = payload[name]["FKS"]["configs"]
        alla = payload[name]["all"]["configs"]
        # hundreds-to-thousands, explorable within a training prefix
        assert 10 <= fks <= 20000
        assert alla >= fks
    # barrier exploration: GNMT's space stays within ~an order of magnitude
    # of the shallow models despite ~8x more layers
    small = payload["sublstm"]["FKS"]["configs"]
    assert payload["gnmt"]["FKS"]["configs"] < 20 * small
    # always-on profiling: overhead below the paper's 0.5% bound
    for name in MODELS:
        assert payload[name]["all"]["overhead"] < 0.005
