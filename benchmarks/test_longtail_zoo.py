"""The introduction's long-tail claim, on the introduction's own models.

Section 1 names MI-LSTM, LSTM-with-Attention, SC-RNN and RHN as novel
structures "none of which are currently accelerated by cuDNN" -- and
argues these are precisely the models AI innovation depends on.  This
bench runs Astra on every long-tail cell in the zoo (including the TCN
of section 6.7's generalization argument) and confirms the paper's
pitch: zero or partial accelerator coverage, consistent adaptive
speedups anyway.
"""

from harness import emit
from repro import AstraSession
from repro.baselines import detect_lstm_steps, run_native
from repro.gpu import P100
from repro.models import EXTRA_BUILDERS, MODEL_BUILDERS
import repro.models.rhn as rhn
import repro.models.attn_lstm as attn_lstm
import repro.models.tcn as tcn
import repro.models.scrnn as scrnn
import repro.models.milstm as milstm
import repro.models.sublstm as sublstm

CASES = {
    "scrnn": (MODEL_BUILDERS["scrnn"], scrnn.DEFAULT_CONFIG),
    "milstm": (MODEL_BUILDERS["milstm"], milstm.DEFAULT_CONFIG),
    "sublstm": (MODEL_BUILDERS["sublstm"], sublstm.DEFAULT_CONFIG),
    "rhn": (EXTRA_BUILDERS["rhn"], rhn.DEFAULT_CONFIG),
    "attn_lstm": (EXTRA_BUILDERS["attn_lstm"], attn_lstm.DEFAULT_CONFIG),
    "tcn": (EXTRA_BUILDERS["tcn"], tcn.DEFAULT_CONFIG),
}


def build_table():
    payload = {}
    for name, (builder, config) in CASES.items():
        model = builder(config.scaled(batch_size=16, seq_len=5))
        coverage = detect_lstm_steps(model.graph).fraction_of_gemms
        report = AstraSession(model, features="FKS", seed=1).optimize()
        payload[name] = {
            "cudnn_coverage": coverage,
            "speedup": report.speedup_over_native,
            "configs": report.configs_explored,
        }
    return payload


def test_longtail_zoo(table_benchmark):
    payload = table_benchmark(build_table)
    rows = [
        [name, f"{e['cudnn_coverage'] * 100:.0f}%", f"{e['speedup']:.2f}x", e["configs"]]
        for name, e in payload.items()
    ]
    emit(
        "Long-tail zoo (section 1): accelerator coverage vs Astra speedup",
        ["model", "cuDNN coverage", "Astra_FKS speedup", "configs"],
        rows,
        "longtail_zoo",
        payload,
    )
    pure_longtail = ("scrnn", "milstm", "sublstm", "rhn", "tcn")
    for name in pure_longtail:
        assert payload[name]["cudnn_coverage"] == 0.0
        assert payload[name]["speedup"] > 1.3
    # the attention-LSTM hybrid: partial coverage, still accelerated
    assert 0.0 < payload["attn_lstm"]["cudnn_coverage"] < 1.0
    assert payload["attn_lstm"]["speedup"] > 1.2
