"""Table 4: subLSTM speedup over native PyTorch by batch size.

Paper: Astra_F 2.33/2.18/2.0/1.64/1.34/1.18, Astra_all
3.0/2.75/2.4/1.95/1.54/1.29 (the paper's headline "up to 3x").  Shape
targets: the strongest model in the zoo, decaying with batch; kernel
selection contributes at larger batches.
"""

from harness import VARIANTS, emit, speedup_table


def test_table4_sublstm(table_benchmark):
    rows_data = table_benchmark(speedup_table, "sublstm")
    rows = [
        [batch] + [f"{rows_data[batch][v]['speedup']:.2f}" for v in VARIANTS]
        for batch in rows_data
    ]
    emit(
        "Table 4: subLSTM speedup vs native (paper F: 2.33..1.18, all: 3.0..1.29)",
        ["batch"] + [f"Astra_{v}" for v in VARIANTS],
        rows,
        "table4_sublstm",
        rows_data,
    )
    batches = list(rows_data)
    first, last = batches[0], batches[-1]
    assert rows_data[first]["all"]["speedup"] > 1.6
    assert rows_data[first]["all"]["speedup"] > rows_data[last]["all"]["speedup"]
    # kernel adaptation matters at large batch (paper: FK > F at 128+)
    if 256 in rows_data:
        assert rows_data[256]["FK"]["speedup"] >= rows_data[256]["F"]["speedup"]
