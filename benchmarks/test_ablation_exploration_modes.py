"""Section 4.5.1 ablation: parallel exploration vs one-mutation-at-a-time.

The paper's example: 5 fusion groups x (3 chunk x 2 kernel) choices need
(3*2)^5 = 7776 trials under OpenTuner-style single-mutation search, but
only 3*2 = 6 under Astra's fine-grained parallel exploration.  This bench
measures actual mini-batches used by the wirer against the theoretical
one-at-a-time count on the real subLSTM trace.
"""

from harness import build_model, emit
from repro import AstraSession
from repro.core import AstraFeatures, Enumerator, count_configurations
from repro.core.adaptive import MODE_EXHAUSTIVE, UpdateNode
from repro.gpu import P100


def build_table():
    model = build_model("sublstm", 16)
    enum = Enumerator(model.graph, P100, AstraFeatures.preset("FK"))
    tree = enum.build_fk_tree(enum.strategies[0])
    parallel_bound = count_configurations(tree)
    exhaustive = UpdateNode("x", MODE_EXHAUSTIVE, list(tree.children))
    exhaustive_count = count_configurations(exhaustive)

    rep = AstraSession(model, features="FK", seed=1).optimize()
    return {
        "variables": sum(1 for _ in tree.variables()),
        "parallel_bound": parallel_bound,
        "exhaustive_count": exhaustive_count,
        "actual_minibatches": rep.configs_explored,
    }


def test_ablation_exploration_modes(table_benchmark):
    payload = table_benchmark(build_table)
    rows = [
        ["independent variables", payload["variables"]],
        ["one-mutation-at-a-time (exhaustive)", payload["exhaustive_count"]],
        ["parallel exploration bound", payload["parallel_bound"]],
        ["mini-batches actually used", payload["actual_minibatches"]],
    ]
    emit(
        "Ablation (section 4.5.1): additive vs multiplicative state space",
        ["quantity", "count"],
        rows,
        "ablation_exploration_modes",
        payload,
    )
    assert payload["parallel_bound"] < payload["exhaustive_count"] / 1000
    assert payload["actual_minibatches"] <= payload["parallel_bound"] + 2
