"""Table 5: PTB Stacked LSTM ("large", input 1500) relative to cuDNN.

Paper: native PyTorch runs at 0.43..0.86 of cuDNN; Astra_F reaches
0.87-1.43, and Astra_all matches or beats cuDNN (1.0-1.64) -- on a model
fully covered by the hand-optimized accelerator.  Shape targets: PyT well
below 1, Astra within ~10% of cuDNN everywhere and above it at small-to-
mid batch where stream/allocation adaptation has headroom.
"""

from harness import cudnn_table, emit


def test_table5_stacked_lstm(table_benchmark):
    rows_data = table_benchmark(cudnn_table, "stacked_lstm")
    rows = []
    for batch, entry in rows_data.items():
        rows.append([
            batch,
            f"{entry['pyt_rel']:.2f}",
            "1.00",
            f"{entry['F']['rel_cudnn']:.2f}",
            f"{entry['FK']['rel_cudnn']:.2f}",
            f"{entry['all']['rel_cudnn']:.2f}",
        ])
    emit(
        "Table 5: Stacked LSTM relative to cuDNN (paper PyT: .43...86, Astra_all: 1.0..1.64)",
        ["batch", "PyT", "cuDNN", "Astra_F", "Astra_FK", "Astra_all"],
        rows,
        "table5_stacked_lstm",
        rows_data,
    )
    for batch, entry in rows_data.items():
        assert entry["pyt_rel"] < 1.0          # native loses to cuDNN
        assert entry["all"]["rel_cudnn"] > entry["pyt_rel"]  # Astra closes the gap
    # Astra approaches (>= ~80% of) the hand-optimized accelerator everywhere
    assert all(e["all"]["rel_cudnn"] > 0.8 for e in rows_data.values())
    # and matches or beats it somewhere in the sweep
    assert any(e["all"]["rel_cudnn"] >= 0.98 for e in rows_data.values())
