"""Table 6: GNMT relative to cuDNN.

GNMT is *mostly* covered by cuDNN -- the attention module is not -- so
cuDNN is strong but Astra gets close and overtakes it at some batch sizes
(paper: PyT 0.19..0.31 of cuDNN; Astra_all 0.65..1.71).
"""

import os

from harness import cudnn_table, emit

#: GNMT is the deepest model; trim the sweep unless the full run is asked for
BATCHES = (
    None
    if os.environ.get("REPRO_BENCH_BATCHES")
    else (8, 16, 32, 64)
)


def test_table6_gnmt(table_benchmark):
    rows_data = table_benchmark(cudnn_table, "gnmt", ("F", "FK", "all"), BATCHES, 4)
    rows = []
    for batch, entry in rows_data.items():
        rows.append([
            batch,
            f"{entry['pyt_rel']:.2f}",
            "1.00",
            f"{entry['F']['rel_cudnn']:.2f}",
            f"{entry['FK']['rel_cudnn']:.2f}",
            f"{entry['all']['rel_cudnn']:.2f}",
        ])
    emit(
        "Table 6: GNMT relative to cuDNN (paper PyT: .19...31, Astra_all: .65..1.71)",
        ["batch", "PyT", "cuDNN", "Astra_F", "Astra_FK", "Astra_all"],
        rows,
        "table6_gnmt",
        rows_data,
    )
    batches = list(rows_data)
    for batch, entry in rows_data.items():
        assert entry["pyt_rel"] < 0.6              # cuDNN dominates native
        # Astra closes most of the native-vs-cuDNN gap without any
        # hand-written kernels (paper: 0.65..1.71 of cuDNN; here the
        # crossover above 1.0 is not reached -- see EXPERIMENTS.md)
        assert entry["all"]["rel_cudnn"] > 1.3 * entry["pyt_rel"]
        assert entry["all"]["rel_cudnn"] > 0.55
    # the gap narrows as batch grows
    assert rows_data[batches[-1]]["all"]["rel_cudnn"] >= rows_data[batches[0]]["all"]["rel_cudnn"]
