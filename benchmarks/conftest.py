"""Benchmark fixtures: keep pytest-benchmark to one round per table.

Each benchmark regenerates a whole table from the paper, which involves
many simulated mini-batches; a single round per table is the meaningful
unit of measurement.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture()
def table_benchmark(benchmark):
    """Run a table-producing callable once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
