"""Table 8: bucketed adaptation vs native dynamic graphs.

Paper: SCRNN-16 1.61, SCRNN-32 1.43, subLSTM-16 2.47, subLSTM-32 2.13,
StackedLSTM-16 2.44, StackedLSTM-32 2.22 -- Astra with 5-bucket profiling
beats a per-length dynamic execution despite the round-up padding.
"""

from harness import DEFAULT_CONFIGS, MODEL_BUILDERS, emit
from repro.core import run_bucketed
from repro.models import PTB_LENGTHS

CASES = [("scrnn", 16), ("scrnn", 32), ("sublstm", 16), ("sublstm", 32),
         ("stacked_lstm", 16), ("stacked_lstm", 32)]

#: scale the length distribution down so each bucket's graph stays
#: tractable for the simulator; quantile bucketing is scale-invariant
MAX_LEN = 16


def build_table():
    payload = {}
    from repro.models import LengthDistribution

    dist = LengthDistribution("ptb-scaled", mean_log=1.9, sigma_log=0.55,
                              min_len=2, max_len=MAX_LEN)
    for name, batch in CASES:
        config = DEFAULT_CONFIGS[name].scaled(batch_size=batch)
        report = run_bucketed(
            MODEL_BUILDERS[name], config, dist,
            num_buckets=5, num_samples=60, features="FK", seed=2,
        )
        payload[f"{name}-{batch}"] = {
            "speedup": report.speedup,
            "buckets": report.buckets,
            "padding_overhead": report.padding_overhead,
            "configs": report.total_configs,
        }
    return payload


def test_table8(table_benchmark):
    payload = table_benchmark(build_table)
    rows = [
        [case, "1.00", f"{payload[case]['speedup']:.2f}",
         f"{payload[case]['padding_overhead']:.2f}"]
        for case in payload
    ]
    emit(
        "Table 8: Astra + bucketing vs native dynamic graphs "
        "(paper: 1.43..2.47)",
        ["model-batch", "dynamic", "astra+bucketing", "padding ovh"],
        rows,
        "table8_dynamic_graphs",
        payload,
    )
    for case, entry in payload.items():
        assert entry["speedup"] > 1.1, case
        assert len(entry["buckets"]) == 5
    # smaller batches benefit at least as much (paper's -16 rows > -32 rows)
    assert payload["sublstm-16"]["speedup"] >= payload["sublstm-32"]["speedup"] * 0.9
