"""Table 3: MI-LSTM (Hutter) speedup over native PyTorch by batch size.

Paper: Astra_F 2.25/1.93/1.65/1.29/1.13/1.2, Astra_all
2.43/2.13/1.85/1.46/1.23/1.28 for batches 8..256.  Same shape targets as
Table 2: decay with batch size, streams contribute on top of F/FK.
"""

from harness import VARIANTS, emit, speedup_table


def test_table3_milstm(table_benchmark):
    rows_data = table_benchmark(speedup_table, "milstm")
    rows = [
        [batch] + [f"{rows_data[batch][v]['speedup']:.2f}" for v in VARIANTS]
        for batch in rows_data
    ]
    emit(
        "Table 3: MI-LSTM speedup vs native (paper F: 2.25..1.2, all: 2.43..1.28)",
        ["batch"] + [f"Astra_{v}" for v in VARIANTS],
        rows,
        "table3_milstm",
        rows_data,
    )
    batches = list(rows_data)
    assert rows_data[batches[0]]["F"]["speedup"] > rows_data[batches[-1]]["F"]["speedup"]
    assert rows_data[batches[0]]["all"]["speedup"] > 1.3
    for batch in batches:
        entry = rows_data[batch]
        assert entry["all"]["speedup"] >= entry["FKS"]["speedup"] * 0.99
