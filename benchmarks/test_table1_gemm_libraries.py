"""Table 1: GEMM time by library for two shapes from an LSTM run.

Paper values (ms, P100): 64x1024x4096 -> cuBLAS .156, OAI_1 .125 (best),
OAI_2 .938 (6x off); 64x4096x1024 -> cuBLAS .138 (best), OAI_1 .172,
OAI_2 .141 (near-tie).  The reproduction target is the *structure*: the
winner flips between the rows and OAI_2 is catastrophic on row 1 only.
"""

from harness import emit
from repro.gpu import GEMM_LIBRARIES, P100

SHAPES = [(64, 1024, 4096), (64, 4096, 1024)]


def build_table():
    rows = []
    payload = {}
    for (m, k, n) in SHAPES:
        times = {
            lib: kernel.duration_us(m, k, n, P100)
            for lib, kernel in GEMM_LIBRARIES.items()
        }
        payload[f"{m}x{k}x{n}"] = times
        rows.append(
            [f"{m}x{k}x{n}"]
            + [f"{times[lib] / 1000:.3f}" for lib in ("cublas", "oai_1", "oai_2")]
            + [min(times, key=times.get)]
        )
    return rows, payload


def test_table1(table_benchmark):
    rows, payload = table_benchmark(build_table)
    emit(
        "Table 1: GEMM time (ms) by kernel library (paper: .156/.125/.938 and .138/.172/.141)",
        ["size", "cublas", "oai_1", "oai_2", "winner"],
        rows,
        "table1",
        payload,
    )
    t1 = payload["64x1024x4096"]
    t2 = payload["64x4096x1024"]
    # paper structure: winner flips across rows; oai_2 catastrophic on row 1
    assert t1["oai_1"] < t1["cublas"] < t1["oai_2"]
    assert t2["cublas"] < t2["oai_1"]
    assert t1["oai_2"] > 2.5 * t1["cublas"]
    assert t2["oai_2"] < 1.2 * t2["cublas"]
