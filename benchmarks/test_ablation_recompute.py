"""Section 3.4 extension: recomputation as a measured memory/compute trade.

The paper motivates trading compute for memory ("if the cost of
recomputation ... is lower than the parallelism benefit from supporting
say a 2x larger mini-batch size, again a complex dynamic that needs
measurement").  This bench measures that decision on subLSTM: under a
memory budget that only admits the 2x batch *with* recomputation, the
per-sample training time still favors the bigger batch at small batch
sizes (the GPU is underutilized), and the decision flips as batch grows.
"""

from harness import DEFAULT_CONFIGS, emit
from repro.core.recompute import best_batch_under_budget, estimate_memory
from repro.models import build_sublstm


def build_table():
    payload = {}
    for base_batch in (8, 32, 128):
        config = DEFAULT_CONFIGS["sublstm"].scaled(batch_size=base_batch, seq_len=5)
        big = estimate_memory(build_sublstm(config.scaled(batch_size=base_batch * 2)).graph)
        budget = big.total_bytes - big.activation_bytes // 3  # 2x fits only w/ recompute
        decisions = best_batch_under_budget(
            build_sublstm, config, budget, batch_factors=(1, 2)
        )
        payload[base_batch] = [
            {
                "batch": d.batch_size,
                "per_sample_us": d.per_sample_us,
                "recomputed_segments": len(d.recompute.segments),
                "extra_us": d.recompute.extra_time_us,
            }
            for d in decisions
        ]
    return payload


def test_ablation_recompute(table_benchmark):
    payload = table_benchmark(build_table)
    rows = []
    for base, decisions in payload.items():
        for d in decisions:
            rows.append([
                base, d["batch"], f"{d['per_sample_us']:.1f}",
                d["recomputed_segments"], f"{d['extra_us']:.0f}us",
            ])
    emit(
        "Ablation (section 3.4): batch-size vs recomputation under a memory budget",
        ["base batch", "candidate batch", "us/sample", "recomputed segs", "recompute cost"],
        rows,
        "ablation_recompute",
        payload,
    )
    # at small batch, doubling (with recompute) wins per sample
    assert payload[8][0]["batch"] == 16
    assert payload[8][0]["recomputed_segments"] > 0
    # every candidate that needed recomputation actually paid for it
    for decisions in payload.values():
        for d in decisions:
            if d["recomputed_segments"]:
                assert d["extra_us"] > 0
