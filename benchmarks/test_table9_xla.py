"""Table 9: the TensorFlow prototype (Astra_FK) vs XLA.

Paper: on embedding-less variants, XLA gives 0.98-1.45x over native TF
while Astra_FK gives 1.32-2.0x (25-70% over XLA).  With embeddings, XLA
is up to 3x WORSE than native TF (host/device transitions around
lookups), which is why the variants exist.  The stacked LSTM / GNMT rows
also report cuDNN for reference.
"""

from harness import DEFAULT_CONFIGS, MODEL_BUILDERS, emit
from repro import AstraSession
from repro.baselines import cudnn_applicable, run_cudnn, run_native, run_xla
from repro.gpu import P100

MODELS = ("scrnn", "milstm", "sublstm", "stacked_lstm", "gnmt")
BATCHES = (16, 32)


def build_table():
    payload = {}
    for name in MODELS:
        for batch in BATCHES:
            seq = 4 if name == "gnmt" else 5
            config = DEFAULT_CONFIGS[name].scaled(
                batch_size=batch, seq_len=seq, use_embedding=False
            )
            model = MODEL_BUILDERS[name](config)
            native = run_native(model.graph, P100).total_time_us
            xla = run_xla(model.graph, P100).total_time_us
            # the TF prototype: fusion pays tensor copies, no streams (5.4)
            fk = AstraSession(model, features="FK-tf", seed=1).optimize()
            entry = {
                "native_us": native,
                "xla_speedup": native / xla,
                "fk_speedup": native / fk.best_time_us,
                "fk_over_xla": xla / fk.best_time_us,
            }
            if cudnn_applicable(model.graph):
                cudnn = run_cudnn(model.graph, P100).total_time_us
                entry["cudnn_speedup"] = native / cudnn
            payload[f"{name} ({batch})"] = entry

    # the embedding pathology itself (with-embedding variants)
    for name in ("scrnn", "sublstm"):
        config = DEFAULT_CONFIGS[name].scaled(batch_size=16, seq_len=5)
        model = MODEL_BUILDERS[name](config)
        native = run_native(model.graph, P100).total_time_us
        xla = run_xla(model.graph, P100).total_time_us
        payload[f"{name}+embeddings"] = {"xla_speedup": native / xla}
    return payload


def test_table9(table_benchmark):
    payload = table_benchmark(build_table)
    rows = []
    for case, entry in payload.items():
        if "fk_speedup" not in entry:
            continue
        rows.append([
            case, "1.00",
            f"{entry['xla_speedup']:.2f}",
            f"{entry['fk_speedup']:.2f} ({entry['fk_over_xla']:.2f})",
            f"{entry.get('cudnn_speedup', float('nan')):.2f}" if "cudnn_speedup" in entry else "-",
        ])
    emit(
        "Table 9: Astra_FK vs XLA, embedding-less variants "
        "(paper XLA: 0.98-1.45, Astra_FK rel XLA in parens: 0.95-1.72)",
        ["model (batch)", "TF", "TF+XLA", "Astra_FK (rel XLA)", "cuDNN"],
        rows,
        "table9_xla",
        payload,
    )
    fk_over_xla = [
        e["fk_over_xla"] for k, e in payload.items() if "fk_over_xla" in e
    ]
    # Astra_FK beats XLA on most rows, by up to ~70%
    assert sum(1 for r in fk_over_xla if r > 1.0) >= len(fk_over_xla) - 2
    assert max(fk_over_xla) > 1.3
    # XLA itself helps the embedding-less variants
    xla = [e["xla_speedup"] for k, e in payload.items() if "fk_speedup" in e]
    assert all(s > 0.9 for s in xla)
    # ... but hurts badly once embeddings are present (up to 3x worse)
    assert payload["scrnn+embeddings"]["xla_speedup"] < 0.75
    assert payload["sublstm+embeddings"]["xla_speedup"] < 0.75
