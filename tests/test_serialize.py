"""Tests for graph/plan/report serialization."""

import json

import pytest

from repro import AstraSession
from repro.runtime import Executor
from repro.serialize import (
    dumps,
    graph_to_dict,
    kernel_from_dict,
    kernel_to_dict,
    load_plan,
    plan_to_dict,
)
from repro.gpu import (
    CompoundLaunch,
    CopyLaunch,
    ElementwiseLaunch,
    GemmLaunch,
    HostTransfer,
    P100,
)


class TestGraphSerialization:
    def test_structure_preserved(self, tiny_scrnn):
        data = graph_to_dict(tiny_scrnn.graph)
        assert len(data["nodes"]) == len(tiny_scrnn.graph)
        assert data["outputs"] == tiny_scrnn.graph.outputs

    def test_json_clean(self, tiny_scrnn):
        json.loads(dumps(tiny_scrnn.graph))

    def test_node_fields(self, tiny_scrnn):
        data = graph_to_dict(tiny_scrnn.graph)
        gemm = next(n for n in data["nodes"] if n["op"] == "mm")
        assert len(gemm["inputs"]) == 2
        assert gemm["pass"] in ("forward", "backward")


class TestKernelRoundTrip:
    @pytest.mark.parametrize("kernel", [
        GemmLaunch(8, 16, 32, "oai_1", node_ids=(1, 2)),
        ElementwiseLaunch(num_elements=128, fused_ops=3, label="fused_tanh"),
        CopyLaunch(bytes_moved=4096, label="gather_a"),
        CompoundLaunch(total_flops=10**6, rows=16, label="cudnn@x"),
        HostTransfer(bytes_moved=512, direction="d2h"),
    ])
    def test_round_trip(self, kernel):
        restored = kernel_from_dict(kernel_to_dict(kernel))
        assert type(restored) is type(kernel)
        assert restored.duration_us(P100) == pytest.approx(kernel.duration_us(P100))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            kernel_from_dict({"kind": "quantum"})


class TestPlanRoundTrip:
    def test_optimized_plan_round_trips(self, tiny_sublstm, device):
        """A custom-wired plan survives serialization and executes to the
        exact same mini-batch time -- zero-cost re-wiring."""
        report = AstraSession(tiny_sublstm, features="FK", seed=0).optimize()
        plan = report.astra.best_plan
        restored = load_plan(dumps(plan))
        executor = Executor(tiny_sublstm.graph, device)
        assert executor.run(restored).total_time_us == pytest.approx(
            executor.run(plan).total_time_us
        )

    def test_streams_and_barriers_preserved(self, tiny_sublstm, device):
        report = AstraSession(tiny_sublstm, features="FKS", seed=0).optimize()
        plan = report.astra.best_plan
        restored = load_plan(dumps(plan))
        assert restored.stream_of == plan.stream_of
        assert restored.barriers_after == plan.barriers_after
        assert restored.num_streams == plan.num_streams

    def test_version_checked(self):
        with pytest.raises(ValueError):
            load_plan(json.dumps({"version": 99, "units": []}))


class TestReportSerialization:
    def test_session_report(self, tiny_sublstm):
        report = AstraSession(tiny_sublstm, features="F", seed=0).optimize()
        data = json.loads(dumps(report))
        assert data["speedup_over_native"] == pytest.approx(report.speedup_over_native)
        assert data["astra"]["configs_explored"] == report.astra.configs_explored
        assert "plan" in data["astra"]

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            dumps(object())
