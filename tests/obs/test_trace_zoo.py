"""Chrome-trace validation across the model zoo.

Every zoo model's native-plan trace must pass schema validation and its
flow arrows must resolve: each flow id pairs a start with a finish and
both endpoints land inside a kernel slice on their track.  The parallel
case additionally checks that a ``--workers 2`` optimizer trace carries
per-worker thread metadata after :func:`merge_host_trace`.
"""

import pytest

from repro import AstraSession
from repro.baselines.native import native_plan
from repro.gpu import P100
from repro.obs.trace import (
    PID_HOST,
    Tracer,
    chrome_trace,
    merge_host_trace,
    validate_chrome_trace,
)
from repro.runtime import Executor

ZOO = ["tiny_scrnn", "tiny_sublstm", "tiny_milstm", "tiny_stacked_lstm",
       "tiny_gnmt"]


def _trace_native(model):
    executor = Executor(model.graph, P100)
    lowered = executor.dispatcher.lower(native_plan(model.graph))
    result = executor.run_lowered(lowered).raw
    return chrome_trace(result, lowered=lowered, device=P100)


def _assert_flows_resolve(doc):
    slices = {}
    starts, finishes = {}, {}
    for ev in doc["traceEvents"]:
        if ev["ph"] == "X":
            slices.setdefault((ev["pid"], ev["tid"]), []).append(
                (ev["ts"], ev["ts"] + ev["dur"])
            )
        elif ev["ph"] == "s":
            starts[ev["id"]] = ev
        elif ev["ph"] == "f":
            finishes[ev["id"]] = ev
    assert set(starts) == set(finishes), "every flow id must pair s with f"
    for flow_id, ev in list(starts.items()) + list(finishes.items()):
        track = slices.get((ev["pid"], ev["tid"]), [])
        assert any(
            lo - 1e-6 <= ev["ts"] <= hi + 1e-6 for lo, hi in track
        ), f"flow {flow_id} endpoint at ts={ev['ts']} misses every slice"
    return len(starts)


class TestZooTraces:
    @pytest.mark.parametrize("fixture", ZOO)
    def test_trace_validates(self, fixture, request):
        model = request.getfixturevalue(fixture)
        doc = _trace_native(model)
        summary = validate_chrome_trace(doc)
        assert summary["events"] > 0
        assert summary["tracks"], f"{fixture}: no kernel tracks in trace"

    @pytest.mark.parametrize("fixture", ZOO)
    def test_flow_endpoints_resolve(self, fixture, request):
        model = request.getfixturevalue(fixture)
        doc = _trace_native(model)
        _assert_flows_resolve(doc)


class TestWorkerTrace:
    def test_parallel_optimizer_trace_has_worker_tracks(self, tiny_scrnn):
        tracer = Tracer()
        session = AstraSession(
            tiny_scrnn, device=P100, features="FK", seed=0,
            tracer=tracer, workers=2,
        )
        try:
            report = session.optimize(max_minibatches=200)
        finally:
            session.close()
        executor = Executor(tiny_scrnn.graph, P100)
        lowered = executor.dispatcher.lower(report.astra.best_plan)
        result = executor.run_lowered(lowered).raw
        doc = chrome_trace(result, lowered=lowered, device=P100)
        merge_host_trace(doc, tracer.chrome())

        validate_chrome_trace(doc)
        _assert_flows_resolve(doc)

        worker_meta = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
            and ev["pid"] == PID_HOST
            and str(ev["args"].get("name", "")).startswith("worker ")
        ]
        assert worker_meta, "merged trace must label worker threads"
        worker_tids = {ev["tid"] for ev in worker_meta}
        spans = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == PID_HOST
            and ev["tid"] in worker_tids
        ]
        assert spans, "worker sample spans must survive the merge"
        for span in spans:
            assert span["cat"] == "worker"
            assert "ordinal" in span["args"]
