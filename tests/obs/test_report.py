"""Tests for JSON-lines run reports and the summary document."""

import json
import math

import pytest

from repro import AstraSession
from repro.obs import (
    KIND_COMPARE,
    KIND_EXPLORE,
    KIND_PRODUCTION,
    NULL_REPORTER,
    MetricsRegistry,
    RunReporter,
)


class TestReporter:
    def test_best_so_far_is_running_min(self):
        rep = RunReporter()
        for t in (10.0, 12.0, 8.0, 9.0):
            rep.minibatch("fk", t)
        assert [r.best_so_far_us for r in rep.records] == [10.0, 10.0, 8.0, 8.0]
        assert rep.convergence_curve() == [(0, 10.0), (1, 10.0), (2, 8.0), (3, 8.0)]

    def test_assignment_delta_reprs_values(self):
        rep = RunReporter()
        rep.minibatch("fk", 1.0, assignment_delta={"lib": "cublas", "chunk": 4})
        delta = rep.records[0].assignment_delta
        assert delta == {"lib": "'cublas'", "chunk": "4"}

    def test_jsonl_round_trip(self):
        rep = RunReporter()
        rep.minibatch("fk", 10.0, context=("fwd", ("b", 4)),
                      assignment_delta={"x": 1}, kind=KIND_EXPLORE)
        rep.minibatch("compare", 9.0, kind=KIND_COMPARE)
        rep.minibatch("production", 8.0, kind=KIND_PRODUCTION)
        loaded = RunReporter.from_jsonl(rep.jsonl())
        assert loaded.records == rep.records
        # context tuples survive the list encoding
        assert loaded.records[0].context == ("fwd", ("b", 4))

    def test_write_jsonl(self, tmp_path):
        rep = RunReporter()
        rep.minibatch("fk", 10.0)
        path = tmp_path / "run.jsonl"
        rep.write_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["phase"] == "fk"

    def test_empty_reporter(self):
        rep = RunReporter()
        assert rep.best_so_far() == math.inf
        assert rep.jsonl() == ""
        assert RunReporter.from_jsonl("").records == []

    def test_null_reporter_records_nothing(self):
        NULL_REPORTER.minibatch("fk", 10.0)
        assert NULL_REPORTER.records == []
        assert not NULL_REPORTER.enabled


class TestSummary:
    @pytest.fixture(scope="class")
    def run(self, tiny_sublstm):
        metrics = MetricsRegistry()
        reporter = RunReporter()
        session = AstraSession(
            tiny_sublstm, features="FK", seed=0,
            metrics=metrics, reporter=reporter,
        )
        report = session.optimize(max_minibatches=40)
        return report, metrics, reporter

    def test_summary_has_convergence_curve_and_hit_rates(self, run):
        report, metrics, reporter = run
        doc = reporter.summary(report.astra, native_time_us=report.native_time_us,
                               metrics=metrics)
        assert doc["minibatches"] == len(reporter.records)
        curve = doc["convergence_curve"]
        assert len(curve) == len(reporter.records)
        best = [v for _s, v in curve]
        assert best == sorted(best, reverse=True)  # non-increasing
        assert all("index_hit_rate" in p for p in doc["phases"])
        assert doc["speedup_over_native"] == pytest.approx(
            report.speedup_over_native
        )
        assert "profile_index.hit_rate" in doc["metrics"]

    def test_summary_is_json_serializable(self, run):
        report, metrics, reporter = run
        doc = reporter.summary(report.astra, metrics=metrics)
        json.dumps(doc)

    def test_one_record_per_explored_minibatch(self, run):
        report, _metrics, reporter = run
        explored = [r for r in reporter.records if r.kind != KIND_PRODUCTION]
        assert len(explored) == report.astra.configs_explored
        assert sum(1 for r in reporter.records if r.kind == KIND_PRODUCTION) == 1

    def test_records_carry_phase_and_context(self, run):
        report, _metrics, reporter = run
        phase_names = {p.name for p in report.astra.phases}
        explore = [r for r in reporter.records if r.kind == KIND_EXPLORE]
        assert explore
        assert all(r.phase in phase_names for r in explore)
        assert all(r.context for r in reporter.records)

    def test_first_record_has_full_assignment_delta(self, run):
        _report, _metrics, reporter = run
        assert reporter.records[0].assignment_delta
