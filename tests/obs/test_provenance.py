"""Tests for exploration provenance: the per-variable decision history.

The load-bearing properties:

* **log == index, bit-identically** -- every measurement in the log is
  the exact float the exploration's profile index holds (the hooks sit
  on the same ``_record_measurements`` call that feeds ``finalize``), in
  serial runs and in ``--workers N`` runs alike;
* **worker-count invariance** -- the engine's log is byte-identical for
  any worker count (the merge replays outcomes in canonical order).

Serial-loop and engine measurements agree to the repo's established
equivalence contract (rel 1e-9, see ``tests/parallel/test_equivalence``),
so serial-vs-engine logs are compared structurally with that tolerance.
"""

import pytest

from repro import AstraSession
from repro.core.profile_index import mangle
from repro.obs.provenance import NULL_PROVENANCE, ProvenanceLog
from repro.perf import FastPath


def _explore(model, device, provenance, workers=None, fast=None,
             features="FK", budget=400):
    session = AstraSession(
        model, device=device, features=features, seed=0,
        provenance=provenance, workers=workers, fast=fast,
    )
    try:
        report = session.optimize(max_minibatches=budget)
    finally:
        session.close()
    return report, session.wirer.index.snapshot()


class TestHooks:
    def test_candidates_recorded_once(self):
        log = ProvenanceLog()
        log.candidates((), "var", [1, 2, 3])
        log.candidates((), "var", [1, 2])  # later snapshot ignored
        assert log.decision("var").candidates == [1, 2, 3]

    def test_measured_first_write_wins(self):
        log = ProvenanceLog()
        log.candidates((), "var", [1, 2])
        log.measured((), "var", 1, 10.0)
        log.measured((), "var", 1, 99.0)  # replay of the same key
        assert log.decision("var").measurements[1] == 10.0

    def test_winner_is_first_strict_minimum(self):
        log = ProvenanceLog()
        log.candidates((), "var", ["a", "b", "c"])
        log.measured((), "var", "a", 5.0)
        log.measured((), "var", "b", 5.0)   # tie: first in order wins
        log.measured((), "var", "c", 7.0)
        decision = log.decision("var")
        assert decision.winner == "a"
        assert decision.runner_up == "b"
        assert decision.margin_us == pytest.approx(0.0)

    def test_quarantine_flagged(self):
        log = ProvenanceLog()
        log.candidates((), "var", [1, 2])
        log.measured((), "var", 1, 10.0)
        log.quarantined((), "var", 2)
        decision = log.decision("var")
        assert 2 in decision.quarantined
        assert decision.winner == 1

    def test_null_provenance_is_inert(self):
        NULL_PROVENANCE.candidates((), "v", [1])
        NULL_PROVENANCE.measured((), "v", 1, 1.0)
        assert not NULL_PROVENANCE.enabled
        assert NULL_PROVENANCE.decisions() == []
        assert NULL_PROVENANCE.to_dict() == {"version": 1, "events": []}


def _assert_log_matches_index(log, index_snapshot) -> None:
    """Every measured value in the log must be the exact float the
    profile index holds for the same (context, name, choice) key."""
    checked = 0
    for decision in log.decisions():
        for choice, value in decision.measurements.items():
            key = mangle(decision.context, (decision.name, choice))
            if key in index_snapshot:
                assert index_snapshot[key] == value, (
                    f"{decision.name} {choice!r}: log holds {value!r}, "
                    f"index holds {index_snapshot[key]!r}"
                )
                checked += 1
    assert checked, "no log measurement mapped onto an index entry"


class TestExplorationProvenance:
    def test_every_fk_variable_has_a_decision(self, tiny_scrnn, device):
        log = ProvenanceLog()
        report, _index = _explore(tiny_scrnn, device, log)
        decisions = {d.name: d for d in log.decisions()}
        fusion_vars = [
            name for name in report.astra.assignment if name in decisions
        ]
        assert fusion_vars, "exploration must record fk decisions"

    def test_winner_matches_report_assignment(self, tiny_scrnn, device):
        log = ProvenanceLog()
        report, _index = _explore(tiny_scrnn, device, log)
        for decision in log.decisions():
            chosen = report.astra.assignment.get(decision.name)
            if chosen is None or decision.winner is None:
                continue
            assert repr(decision.winner) == repr(chosen), (
                f"{decision.name}: provenance winner {decision.winner!r} "
                f"!= report assignment {chosen!r}"
            )

    def test_serial_log_reproduces_index_bit_identically(
        self, tiny_scrnn, device
    ):
        log = ProvenanceLog()
        _report, index = _explore(tiny_scrnn, device, log)
        _assert_log_matches_index(log, index)

    def test_parallel_log_reproduces_index_bit_identically(
        self, tiny_scrnn, device
    ):
        log = ProvenanceLog()
        _report, index = _explore(tiny_scrnn, device, log, workers=2)
        _assert_log_matches_index(log, index)

    def test_engine_log_invariant_across_worker_counts(
        self, tiny_scrnn, device
    ):
        one = ProvenanceLog()
        _explore(tiny_scrnn, device, one, workers=1)
        two = ProvenanceLog()
        _explore(tiny_scrnn, device, two, workers=2)
        assert one.to_dict() == two.to_dict()

    def test_serial_and_parallel_decide_identically(self, tiny_scrnn, device):
        serial = ProvenanceLog()
        _explore(tiny_scrnn, device, serial)
        parallel = ProvenanceLog()
        _explore(tiny_scrnn, device, parallel, workers=2)
        serial_events = serial.to_dict()["events"]
        parallel_events = parallel.to_dict()["events"]
        assert len(serial_events) == len(parallel_events)
        for ours, theirs in zip(serial_events, parallel_events):
            for field in ("event", "context", "name"):
                assert ours.get(field) == theirs.get(field)
            assert ours.get("choice") == theirs.get("choice")
            value, other = ours.get("value"), theirs.get("value")
            if isinstance(value, float) and isinstance(other, float):
                # serial loop vs engine: the repo-wide measurement
                # equivalence contract (tests/parallel/test_equivalence)
                assert other == pytest.approx(value, rel=1e-9)
            else:
                assert value == other
        serial_winners = {d.name: d.winner for d in serial.decisions()}
        parallel_winners = {d.name: d.winner for d in parallel.decisions()}
        assert serial_winners == parallel_winners

    def test_prune_verdicts_recorded_with_estimates(self, tiny_scrnn, device):
        log = ProvenanceLog()
        _explore(
            tiny_scrnn, device, log,
            fast=FastPath(cache=True, prune=True),
        )
        pruned = [
            (d.name, choice, estimate)
            for d in log.decisions()
            for choice, estimate in d.pruned
        ]
        assert pruned, "pruning run must record FK-prune verdicts"
        for _name, _choice, estimate in pruned:
            assert estimate is None or estimate > 0.0

    def test_pruned_run_log_matches_winner_of_report(self, tiny_scrnn, device):
        log = ProvenanceLog()
        report, _index = _explore(
            tiny_scrnn, device, log, fast=FastPath(cache=True, prune=True),
        )
        for decision in log.decisions():
            chosen = report.astra.assignment.get(decision.name)
            if chosen is None or decision.winner is None:
                continue
            assert repr(decision.winner) == repr(chosen)

    def test_compare_phase_recorded(self, tiny_scrnn, device):
        log = ProvenanceLog()
        _explore(tiny_scrnn, device, log, features="all", budget=400)
        compares = log.compares()
        assert compares, "the cross-strategy compare phase must be logged"
        decisive = log.decisive()
        assert decisive, "decisive() must summarize at least one variable"
        assert any(entry["winner"] is not None for entry in decisive.values())


class TestSerialization:
    def test_round_trip(self, tiny_scrnn, device):
        log = ProvenanceLog()
        _explore(tiny_scrnn, device, log)
        restored = ProvenanceLog.from_dict(log.to_dict())
        assert restored.to_dict() == log.to_dict()
        assert len(restored.decisions()) == len(log.decisions())

    def test_report_serialization_carries_provenance(self, tiny_scrnn, device):
        import json

        from repro.serialize import report_to_dict

        log = ProvenanceLog()
        report, _index = _explore(tiny_scrnn, device, log)
        doc = report_to_dict(report.astra)
        assert doc["provenance"] is not None
        json.dumps(doc)
        restored = ProvenanceLog.from_dict(doc["provenance"])
        assert restored.to_dict() == log.to_dict()

    def test_render_names_winner_and_runner_up(self, tiny_scrnn, device):
        log = ProvenanceLog()
        report, _index = _explore(tiny_scrnn, device, log)
        text = log.render(assignment=report.astra.assignment)
        assert "winner" in text
        assert "runner-up" in text
