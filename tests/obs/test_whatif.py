"""Tests for what-if timeline projection (Daydream-style replay).

The acceptance gate lives in :class:`TestSwapAccuracyGate`: for scrnn and
milstm, projecting a library swap for each of the top-3 critical-path
GEMMs must predict the *re-measured* epoch time within 5% -- the
projection replays the recorded timeline through the dependency graph,
it never re-runs the simulator.
"""

from dataclasses import replace

import pytest

from repro import AstraSession
from repro.gpu import P100
from repro.gpu.kernels import ElementwiseLaunch, GemmLaunch
from repro.models import MODEL_BUILDERS
from repro.obs.analysis import TimelineGraph, analyze, analyze_execution
from repro.obs.whatif import (
    project,
    remove_kernel,
    scale_kernel,
    swap_libraries,
    swap_library,
)
from repro.runtime import ExecutionPlan, Executor, Unit

ACCURACY_GATE = 0.05


@pytest.fixture()
def diamond():
    from repro.ir import Tracer as IrTracer

    tr = IrTracer("diamond")
    x = tr.input((64, 64))
    w1 = tr.param((64, 256))
    w2 = tr.param((64, 256))
    a = tr.matmul(x, w1)
    b = tr.matmul(x, w2)
    c = tr.add(a, b)
    tr.output(c)
    units = [
        Unit(0, GemmLaunch(64, 64, 256, "cublas"), (a.node.node_id,)),
        Unit(1, GemmLaunch(64, 64, 256, "oai_1"), (b.node.node_id,)),
        Unit(2, ElementwiseLaunch(num_elements=64 * 256), (c.node.node_id,)),
    ]
    plan = ExecutionPlan(units=units, stream_of={0: 0, 1: 1, 2: 0})
    executor = Executor(tr.graph, P100)
    lowered = executor.dispatcher.lower(plan)
    result = executor.run_lowered(lowered).raw
    graph = TimelineGraph.from_execution(result, lowered, P100)
    return tr.graph, plan, result, graph


def _remeasure_with_library(ir_graph, plan, unit_id, library, seed=0):
    """Ground truth for a swap projection: rebuild the plan with the
    unit's GEMM moved to ``library`` and actually re-run the simulator."""
    units = []
    for unit in plan.units:
        if unit.unit_id == unit_id and isinstance(unit.kernel, GemmLaunch):
            k = unit.kernel
            units.append(replace(unit, kernel=GemmLaunch(
                k.m, k.k, k.n, library, node_ids=k.node_ids
            )))
        else:
            units.append(unit)
    new_plan = ExecutionPlan(
        units=units, stream_of=dict(plan.stream_of),
        barriers_after=plan.barriers_after, profile=plan.profile,
        label=plan.label,
    )
    return Executor(ir_graph, P100, seed=seed).run(new_plan).total_time_us


class TestProjectBasics:
    def test_no_changes_reproduces_baseline(self, diamond):
        _ir, _plan, result, graph = diamond
        projection = project(graph, [])
        assert projection.projected_total_us == pytest.approx(
            result.total_time_us, abs=1e-6
        )
        assert projection.delta_us == pytest.approx(0.0, abs=1e-6)

    def test_scale_up_never_speeds_up(self, diamond):
        _ir, _plan, _result, graph = diamond
        for node in graph.nodes:
            projection = scale_kernel(graph, node.index, 2.0)
            assert projection.projected_total_us >= projection.baseline_total_us - 1e-6

    def test_scale_down_never_slows_down(self, diamond):
        _ir, _plan, _result, graph = diamond
        for node in graph.nodes:
            projection = scale_kernel(graph, node.index, 0.5)
            assert projection.projected_total_us <= projection.baseline_total_us + 1e-6

    def test_remove_kernel_zeroes_its_duration(self, diamond):
        _ir, _plan, _result, graph = diamond
        projection = remove_kernel(graph, 0, device=P100)
        assert projection.changes[0].new_duration_us == 0.0
        assert projection.projected_total_us < projection.baseline_total_us

    def test_swap_rejects_non_gemm(self, diamond):
        _ir, _plan, _result, graph = diamond
        non_gemm = next(n for n in graph.nodes if n.kind != "gemm")
        with pytest.raises(ValueError):
            swap_library(graph, non_gemm.index, "oai_1", P100)

    def test_render_and_to_dict(self, diamond):
        import json

        _ir, _plan, _result, graph = diamond
        projection = scale_kernel(graph, 0, 0.5)
        assert "projected" in projection.render()
        json.dumps(projection.to_dict())


class TestSwapExactOnDiamond:
    def test_swap_projection_matches_remeasurement_exactly(self, diamond):
        ir_graph, plan, _result, graph = diamond
        gemm = next(n for n in graph.nodes if n.kind == "gemm")
        target = "oai_1" if gemm.kernel.library == "cublas" else "cublas"
        projection = swap_library(graph, gemm.index, target, P100)
        actual = _remeasure_with_library(ir_graph, plan, gemm.unit, target)
        assert projection.projected_total_us == pytest.approx(actual, abs=1e-6)


def _optimized_timeline(name, seed=0, budget=300):
    module = __import__(f"repro.models.{name}", fromlist=["DEFAULT_CONFIG"])
    config = module.DEFAULT_CONFIG.scaled(batch_size=4, seq_len=3)
    model = MODEL_BUILDERS[name](config)
    session = AstraSession(model, device=P100, features="all", seed=seed)
    try:
        plan = session.optimize(max_minibatches=budget).astra.best_plan
    finally:
        session.close()
    executor = Executor(model.graph, P100, seed=seed)
    lowered = executor.dispatcher.lower(plan)
    result = executor.run_lowered(lowered).raw
    return model.graph, plan, result, TimelineGraph.from_execution(
        result, lowered, P100
    )


class TestSwapAccuracyGate:
    """The PR's acceptance gate: projected vs re-measured within 5%."""

    @pytest.mark.parametrize("name", ["scrnn", "milstm"])
    def test_top3_critical_gemm_swaps_within_5pct(self, name):
        ir_graph, plan, result, graph = _optimized_timeline(name)
        report = analyze(graph)
        tops = report.top_critical_records(3, kind="gemm")
        assert tops, f"{name}: optimized plan must have critical GEMMs"
        for index in tops:
            node = graph.nodes[index]
            target = "oai_1" if node.kernel.library == "cublas" else "cublas"
            # swapping a unit's library moves every launch of that unit
            swap_idx = [
                n.index for n in graph.nodes
                if n.unit == node.unit and n.kind == "gemm"
            ]
            projection = swap_libraries(
                graph, {i: target for i in swap_idx}, P100
            )
            actual = _remeasure_with_library(ir_graph, plan, node.unit, target)
            error = abs(projection.projected_total_us - actual) / actual
            assert error <= ACCURACY_GATE, (
                f"{name} unit {node.unit} -> {target}: projected "
                f"{projection.projected_total_us:.3f}us vs re-measured "
                f"{actual:.3f}us ({error * 100:.2f}% > 5%)"
            )

    @pytest.mark.parametrize("name", ["scrnn", "milstm"])
    def test_critical_path_sums_to_measured_epoch(self, name):
        _ir, _plan, result, graph = _optimized_timeline(name)
        report = analyze(graph)
        covered = sum(s.duration for s in report.segments)
        assert covered == pytest.approx(result.total_time_us, abs=1e-6)
        assert (
            report.critical_kernel_us + report.critical_dispatch_us
            + report.critical_gap_us
        ) == pytest.approx(result.total_time_us, abs=1e-6)
