"""Tests for the Chrome trace-event exporter and the host-side tracer."""

import json

import pytest

from repro.gpu import P100
from repro.gpu.kernels import GemmLaunch
from repro.obs import NULL_TRACER, Tracer, chrome_trace, validate_chrome_trace
from repro.obs.trace import PID_CPU, PID_GPU, write_chrome_trace
from repro.runtime import ExecutionPlan, Executor, Unit


@pytest.fixture()
def two_stream_execution():
    """A hand-built two-stream plan (x -> (a, b) -> c with b on stream 1)
    executed on the simulator: guarantees concurrent tracks and a
    cross-stream wait-event edge for the flow-arrow tests."""
    from repro.gpu.kernels import ElementwiseLaunch
    from repro.ir import Tracer as IrTracer

    tr = IrTracer("diamond")
    x = tr.input((64, 64))
    w1 = tr.param((64, 256))
    w2 = tr.param((64, 256))
    a = tr.matmul(x, w1)
    b = tr.matmul(x, w2)
    c = tr.add(a, b)
    tr.output(c)
    units = [
        Unit(0, GemmLaunch(64, 64, 256, "cublas"), (a.node.node_id,)),
        Unit(1, GemmLaunch(64, 64, 256, "oai_1"), (b.node.node_id,)),
        Unit(2, ElementwiseLaunch(num_elements=64 * 256), (c.node.node_id,)),
    ]
    plan = ExecutionPlan(units=units, stream_of={0: 0, 1: 1, 2: 0})
    executor = Executor(tr.graph, P100)
    lowered = executor.dispatcher.lower(plan)
    result = executor.run_lowered(lowered).raw
    return result, lowered


class TestChromeTrace:
    def test_document_validates(self, two_stream_execution):
        result, lowered = two_stream_execution
        doc = chrome_trace(result, lowered=lowered, device=P100)
        summary = validate_chrome_trace(doc)
        assert summary["events"] > 0

    def test_one_track_per_stream_plus_cpu(self, two_stream_execution):
        result, lowered = two_stream_execution
        doc = chrome_trace(result, lowered=lowered, device=P100)
        summary = validate_chrome_trace(doc)
        gpu_tracks = {tid for pid, tid in summary["tracks"] if pid == PID_GPU}
        cpu_tracks = {tid for pid, tid in summary["tracks"] if pid == PID_CPU}
        assert gpu_tracks == set(result.stream_ids())
        assert len(gpu_tracks) >= 2
        assert cpu_tracks == {0}

    def test_kernel_slices_carry_args(self, two_stream_execution):
        result, lowered = two_stream_execution
        doc = chrome_trace(result, lowered=lowered, device=P100)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["pid"] == PID_GPU]
        assert len(slices) == len(result.records)
        for ev in slices:
            assert "unit" in ev["args"]
            assert "stream" in ev["args"]
            assert "kind" in ev["args"]
        gemms = [e for e in slices if e["cat"] == "gemm"]
        assert gemms, "plan should contain at least one GEMM"
        for ev in gemms:
            assert "library" in ev["args"]
            assert ev["args"]["waves"] >= 1
            assert 0.0 < ev["args"]["occupancy"] <= 1.0

    def test_cpu_dispatch_track_has_launch_overheads(self, two_stream_execution):
        result, lowered = two_stream_execution
        doc = chrome_trace(result, lowered=lowered, device=P100)
        launches = [e for e in doc["traceEvents"]
                    if e["ph"] == "X" and e["pid"] == PID_CPU]
        assert len(launches) == len(result.records)
        assert all(e["dur"] == P100.launch_overhead_us for e in launches)

    def test_cross_stream_flow_events(self, two_stream_execution):
        result, lowered = two_stream_execution
        doc = chrome_trace(result, lowered=lowered, device=P100)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) > 0
        by_id = {e["id"]: e for e in starts}
        for fin in finishes:
            start = by_id[fin["id"]]
            # a flow arrow always crosses streams, forward in time
            assert start["tid"] != fin["tid"]
            assert fin["ts"] >= start["ts"]

    def test_timestamps_within_minibatch(self, two_stream_execution):
        result, lowered = two_stream_execution
        doc = chrome_trace(result, lowered=lowered, device=P100)
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                assert 0.0 <= ev["ts"]
                assert ev["ts"] + ev["dur"] <= result.total_time_us + 1e-6

    def test_exporter_without_lowering_still_valid(self, two_stream_execution):
        result, _lowered = two_stream_execution
        doc = chrome_trace(result)
        validate_chrome_trace(doc)

    def test_write_round_trips(self, two_stream_execution, tmp_path):
        result, lowered = two_stream_execution
        path = tmp_path / "out.trace.json"
        write_chrome_trace(path, result, lowered=lowered, device=P100)
        validate_chrome_trace(json.loads(path.read_text()))

    def test_sequential_plan_single_track(self, mlp_tracer):
        tracer, _loss = mlp_tracer
        graph = tracer.graph
        gemm_nodes = graph.gemm_nodes()
        units = [
            Unit(i, GemmLaunch(*[4, 8, 16][:3], "cublas"), (node.node_id,))
            for i, node in enumerate(gemm_nodes[:1])
        ]
        executor = Executor(graph, P100)
        lowered = executor.dispatcher.lower(ExecutionPlan(units=units))
        result = executor.run_lowered(lowered).raw
        doc = chrome_trace(result, lowered=lowered, device=P100)
        summary = validate_chrome_trace(doc)
        assert {tid for pid, tid in summary["tracks"] if pid == PID_GPU} == {0}


class TestValidator:
    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"foo": []})

    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError, match="invalid phase"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "Z", "pid": 0, "tid": 0, "name": "x", "ts": 0}
            ]})

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="invalid dur"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 0, "dur": -1}
            ]})

    def test_rejects_flow_without_id(self):
        with pytest.raises(ValueError, match="missing 'id'"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "s", "pid": 0, "tid": 0, "name": "x", "ts": 0}
            ]})


class TestHostTracer:
    def test_span_records_duration(self):
        clock_value = [0.0]

        def clock():
            return clock_value[0]

        tracer = Tracer(clock=clock)
        with tracer.span("phase", strategy="fwd"):
            clock_value[0] = 0.5
        doc = tracer.chrome()
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["name"] == "phase"
        assert spans[0]["dur"] == pytest.approx(0.5e6)
        assert spans[0]["args"] == {"strategy": "fwd"}
        validate_chrome_trace(doc)

    def test_instant_and_counter(self):
        tracer = Tracer()
        tracer.instant("hit", key="k")
        tracer.counter("explored", 3)
        doc = tracer.chrome()
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert "i" in phases and "C" in phases
        validate_chrome_trace(doc)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("phase"):
            pass
        NULL_TRACER.instant("x")
        NULL_TRACER.counter("y", 1.0)
        assert NULL_TRACER.chrome()["traceEvents"] == []
        assert not NULL_TRACER.enabled
