"""Tests for the counter/gauge/histogram/series registry."""

import json

import pytest

from repro.obs import NULL_REGISTRY, MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value == 2.5

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 3.0, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(3.0)
        assert h.min == 1.0 and h.max == 5.0

    def test_histogram_power_of_two_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(3.0)   # -> bucket 4
        h.observe(4.0)   # -> bucket 4
        h.observe(5.0)   # -> bucket 8
        h.observe(0.0)   # -> bucket 0
        assert h.buckets == {4.0: 2, 8.0: 1, 0.0: 1}

    def test_series_auto_steps(self):
        reg = MetricsRegistry()
        s = reg.series("s")
        s.append(10.0)
        s.append(9.0)
        s.append(8.5, step=10)
        assert s.points == [(0, 10.0), (1, 9.0), (10, 8.5)]
        assert s.last == 8.5


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(0.5)
        reg.histogram("c").observe(7.0)
        reg.series("d").append(1.0)
        data = json.loads(reg.to_json())
        assert data["version"] == 1
        snap = data["metrics"]
        assert snap["a"] == {"type": "counter", "value": 2}
        assert snap["b"]["value"] == 0.5
        assert snap["c"]["count"] == 1
        assert snap["d"]["points"] == [[0, 1.0]]

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert list(reg.snapshot()) == ["a", "z"]


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        NULL_REGISTRY.counter("c").inc()
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(1.0)
        NULL_REGISTRY.series("s").append(1.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert not NULL_REGISTRY.enabled

    def test_shared_instrument_never_accumulates(self):
        c = NULL_REGISTRY.counter("c")
        c.inc(100)
        assert c.value == 0


class TestHistogramPercentiles:
    def test_single_observation_is_every_percentile(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(7.0)
        assert h.percentile(50) == pytest.approx(7.0)
        assert h.percentile(99) == pytest.approx(7.0)

    def test_percentiles_monotone_and_clamped(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for value in (1.0, 2.0, 4.0, 8.0, 100.0):
            h.observe(value)
        p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
        assert p50 <= p90 <= p99
        assert h.min <= p50 and p99 <= h.max
        assert h.percentile(100) == pytest.approx(h.max)

    def test_median_within_bucket_resolution(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for value in range(1, 101):
            h.observe(float(value))
        # power-of-two buckets: the estimate is within a factor of two
        assert 25.0 <= h.percentile(50) <= 100.0

    def test_empty_histogram_has_no_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        assert h.percentile(50) is None
        assert h.summary() == {"p50": None, "p90": None, "p99": None}

    def test_bad_quantile_raises(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(1.0)
        for q in (0.0, -1.0, 101.0):
            with pytest.raises(ValueError):
                h.percentile(q)

    def test_summary_keys_and_snapshot_carry_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(3.0)
        assert set(h.summary()) == {"p50", "p90", "p99"}
        snap = h.snapshot()
        for key in ("p50", "p90", "p99"):
            assert snap[key] == pytest.approx(3.0)
        json.dumps(reg.to_json() and json.loads(reg.to_json()))

    def test_null_instrument_percentiles_inert(self):
        h = NULL_REGISTRY.histogram("h")
        h.observe(5.0)
        assert h.percentile(50) is None
        assert h.summary() == {}
