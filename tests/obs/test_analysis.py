"""Tests for critical-path attribution over executed timelines."""

import pytest

from repro.gpu import P100
from repro.gpu.kernels import ElementwiseLaunch, GemmLaunch
from repro.obs import chrome_trace
from repro.obs.analysis import (
    SEG_KERNEL,
    TimelineGraph,
    analyze,
    analyze_execution,
    analyze_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime import ExecutionPlan, Executor, Unit


@pytest.fixture()
def diamond_execution():
    """x -> (a, b) -> c with b on stream 1: two concurrent tracks plus a
    cross-stream wait edge, the smallest schedule with real contention."""
    from repro.ir import Tracer as IrTracer

    tr = IrTracer("diamond")
    x = tr.input((64, 64))
    w1 = tr.param((64, 256))
    w2 = tr.param((64, 256))
    a = tr.matmul(x, w1)
    b = tr.matmul(x, w2)
    c = tr.add(a, b)
    tr.output(c)
    units = [
        Unit(0, GemmLaunch(64, 64, 256, "cublas"), (a.node.node_id,)),
        Unit(1, GemmLaunch(64, 64, 256, "oai_1"), (b.node.node_id,)),
        Unit(2, ElementwiseLaunch(num_elements=64 * 256), (c.node.node_id,)),
    ]
    plan = ExecutionPlan(units=units, stream_of={0: 0, 1: 1, 2: 0})
    executor = Executor(tr.graph, P100)
    lowered = executor.dispatcher.lower(plan)
    result = executor.run_lowered(lowered).raw
    return result, lowered


class TestTimelineGraph:
    def test_one_node_per_record(self, diamond_execution):
        result, lowered = diamond_execution
        graph = TimelineGraph.from_execution(result, lowered, P100)
        assert len(graph.nodes) == len(result.records)

    def test_edges_point_index_forward(self, diamond_execution):
        result, lowered = diamond_execution
        graph = TimelineGraph.from_execution(result, lowered, P100)
        for consumer, producers in graph.wait_producers.items():
            for producer in producers:
                assert producer < consumer

    def test_cross_stream_edge_exists(self, diamond_execution):
        result, lowered = diamond_execution
        graph = TimelineGraph.from_execution(result, lowered, P100)
        cross = [
            (p, consumer)
            for consumer, producers in graph.wait_producers.items()
            for p in producers
            if graph.nodes[p].stream != graph.nodes[consumer].stream
        ]
        assert cross, "diamond join must produce a cross-stream wait edge"


class TestCriticalPath:
    def test_segments_partition_total_exactly(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        covered = sum(s.duration for s in report.segments)
        assert covered == pytest.approx(result.total_time_us, abs=1e-6)

    def test_segments_contiguous_and_ordered(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        assert report.segments[0].start == pytest.approx(0.0)
        assert report.segments[-1].end == pytest.approx(result.total_time_us)
        for prev, cur in zip(report.segments, report.segments[1:]):
            assert cur.start == pytest.approx(prev.end, abs=1e-6)

    def test_kernel_contributions_bounded_by_durations(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        graph = report.graph
        per_node: dict = {}
        for seg in report.segments:
            if seg.kind == SEG_KERNEL and seg.index is not None:
                per_node[seg.index] = per_node.get(seg.index, 0.0) + seg.duration
        for index, contribution in per_node.items():
            assert contribution <= graph.nodes[index].duration + 1e-6

    def test_kernel_table_ranked_descending(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        shares = [row["critical_us"] for row in report.kernels]
        assert shares == sorted(shares, reverse=True)

    def test_critical_records_in_time_order(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        starts = [report.graph.nodes[i].start for i in report.critical_records]
        assert starts == sorted(starts)

    def test_critical_nodes_have_zero_slack(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        # a node whose end time bounds the makespan cannot be slid at all
        makespan_enders = [
            n.index for n in report.graph.nodes
            if n.end == pytest.approx(report.gpu_makespan_us)
        ]
        for index in makespan_enders:
            assert report.slack_us[index] == pytest.approx(0.0, abs=1e-6)


class TestStreamAttribution:
    def test_per_stream_accounting_sums_to_total(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        assert report.streams, "two-stream plan must produce attributions"
        for stream in report.streams:
            covered = (
                stream.busy_us + stream.stall_wait_us
                + stream.stall_dispatch_us + stream.idle_us
            )
            assert covered == pytest.approx(result.total_time_us, abs=1e-6)

    def test_busy_matches_recorded_durations(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        for stream in report.streams:
            recorded = sum(
                n.duration for n in report.graph.nodes
                if n.stream == stream.stream
            )
            assert stream.busy_us == pytest.approx(recorded, abs=1e-6)


class TestTraceRoundTrip:
    def test_trace_analysis_matches_execution_analysis(self, diamond_execution):
        result, lowered = diamond_execution
        doc = chrome_trace(result, lowered=lowered, device=P100)
        from_trace = analyze_trace(doc)
        from_exec = analyze_execution(result, lowered, P100)
        assert from_trace.total_time_us == pytest.approx(from_exec.total_time_us)
        assert from_trace.critical_kernel_us == pytest.approx(
            from_exec.critical_kernel_us, rel=1e-6
        )
        assert len(from_trace.graph.nodes) == len(from_exec.graph.nodes)

    def test_flow_edges_recovered_from_trace(self, diamond_execution):
        result, lowered = diamond_execution
        doc = chrome_trace(result, lowered=lowered, device=P100)
        graph = TimelineGraph.from_chrome_trace(doc)
        assert any(graph.wait_producers.values())


class TestReportOutputs:
    def test_render_mentions_top_kernel(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        text = report.render(top=5)
        assert "critical" in text
        assert report.kernels[0]["name"] in text

    def test_to_dict_is_json_clean(self, diamond_execution):
        import json

        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        json.dumps(report.to_dict())

    def test_observe_into_publishes_gauges(self, diamond_execution):
        result, lowered = diamond_execution
        report = analyze_execution(result, lowered, P100)
        metrics = MetricsRegistry()
        report.observe_into(metrics)
        assert metrics.gauge("analysis.total_time_us").value == pytest.approx(
            result.total_time_us
        )
        assert "analysis.critical.kernel_us" in metrics

    def test_empty_timeline_still_partitions(self):
        graph = TimelineGraph([], total_time_us=5.0, cpu_time_us=5.0)
        report = analyze(graph)
        assert sum(s.duration for s in report.segments) == pytest.approx(5.0)


class TestZooModels:
    def test_native_plan_critical_path_consistent(self, tiny_scrnn):
        from repro.baselines.native import native_plan

        graph = tiny_scrnn.graph
        executor = Executor(graph, P100)
        lowered = executor.dispatcher.lower(native_plan(graph))
        result = executor.run_lowered(lowered).raw
        report = analyze_execution(result, lowered, P100)
        covered = sum(s.duration for s in report.segments)
        assert covered == pytest.approx(result.total_time_us, abs=1e-6)
        # single stream: busy time is the whole makespan story
        assert len(report.streams) == 1
