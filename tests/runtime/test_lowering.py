"""Tests for node-to-kernel lowering and elementwise chain fusion."""

import pytest

from repro.gpu import P100
from repro.ir import Tracer, ops
from repro.runtime import build_units, elementwise_chains, fused_elementwise_kernel
from repro.runtime.lowering import kernel_for_node


class TestKernelForNode:
    def test_gemm_lowering(self):
        tr = Tracer()
        x, w = tr.input((4, 8)), tr.param((8, 16))
        y = tr.matmul(x, w)
        kernel = kernel_for_node(tr.graph, y.node)
        assert kernel.kind == "gemm"
        assert (kernel.m, kernel.k, kernel.n) == (4, 8, 16)

    def test_transposed_gemm_dims(self):
        tr = Tracer()
        x, w = tr.input((8, 4)), tr.param((8, 16))
        y = tr.matmul(x, w, transpose_a=True)
        kernel = kernel_for_node(tr.graph, y.node)
        assert (kernel.m, kernel.k, kernel.n) == (4, 8, 16)

    def test_elementwise_lowering(self):
        tr = Tracer()
        x = tr.input((4, 8))
        y = tr.sigmoid(x)
        kernel = kernel_for_node(tr.graph, y.node)
        assert kernel.kind == "elementwise"
        assert kernel.num_elements == 32

    def test_movement_lowering(self):
        tr = Tracer()
        x = tr.input((4, 8))
        y = tr.slice(x, axis=1, start=0, stop=4)
        assert kernel_for_node(tr.graph, y.node).kind == "copy"

    def test_free_ops_have_no_kernel(self):
        tr = Tracer()
        x = tr.input((4, 8))
        y = tr.reshape(x, (32,))
        f = tr.fill((4, 8), 1.0)
        assert kernel_for_node(tr.graph, y.node) is None
        assert kernel_for_node(tr.graph, f.node) is None
        assert kernel_for_node(tr.graph, x.node) is None

    def test_embedding_lowering(self):
        tr = Tracer()
        table = tr.param((100, 16))
        idx = tr.input((8,), dtype="int64")
        e = tr.embedding(table, idx)
        kernel = kernel_for_node(tr.graph, e.node)
        assert kernel.kind == "elementwise"
        assert kernel.flops_per_element == 0.0


class TestElementwiseChains:
    def test_linear_chain_fused(self):
        tr = Tracer()
        x = tr.input((4, 8))
        y = tr.sigmoid(tr.tanh(tr.relu(x)))
        chains = elementwise_chains(tr.graph)
        assert any(len(c) == 3 for c in chains)

    def test_fanout_breaks_chain(self):
        tr = Tracer()
        x = tr.input((4, 8))
        mid = tr.tanh(x)
        tr.output(tr.sigmoid(mid))
        tr.output(tr.relu(mid))  # mid has two consumers
        chains = elementwise_chains(tr.graph)
        assert all(len(c) == 1 for c in chains)

    def test_shape_change_breaks_chain(self):
        tr = Tracer()
        x = tr.input((4, 8))
        summed = tr.reduce_sum(tr.tanh(x), axis=0)
        tr.sigmoid(summed)
        chains = elementwise_chains(tr.graph)
        chain_of_tanh = next(c for c in chains if len(c) >= 1)
        assert all(len(c) <= 2 for c in chains)

    def test_pass_boundary_breaks_chain(self, tiny_scrnn):
        g = tiny_scrnn.graph
        for chain in elementwise_chains(g):
            tags = {g.node(nid).pass_tag for nid in chain}
            assert len(tags) == 1

    def test_restriction_to_subset(self):
        tr = Tracer()
        x = tr.input((4, 8))
        y = tr.tanh(x)
        z = tr.sigmoid(y)
        only_z = elementwise_chains(tr.graph, {z.node.node_id})
        assert only_z == [(z.node.node_id,)]

    def test_fused_kernel_cost_beats_separate(self):
        tr = Tracer()
        x = tr.input((256, 256))
        y = tr.sigmoid(tr.tanh(tr.relu(x)))
        chain = next(c for c in elementwise_chains(tr.graph) if len(c) == 3)
        fused = fused_elementwise_kernel(tr.graph, chain)
        separate = sum(
            kernel_for_node(tr.graph, tr.graph.node(nid)).duration_us(P100)
            for nid in chain
        )
        assert fused.duration_us(P100) < separate


class TestBuildUnits:
    def test_every_compute_node_covered_or_free(self, tiny_sublstm):
        g = tiny_sublstm.graph
        units = build_units(g)
        covered = {nid for u in units for nid in u.node_ids}
        for node in g.compute_nodes():
            if node.op.name in ("reshape", "fill"):
                continue
            assert node.node_id in covered, f"missing {node}"

    def test_no_double_coverage(self, tiny_sublstm):
        units = build_units(tiny_sublstm.graph, fuse_elementwise=True)
        seen = set()
        for u in units:
            for nid in u.node_ids:
                assert nid not in seen
                seen.add(nid)

    def test_fusion_reduces_unit_count(self, tiny_sublstm):
        plain = build_units(tiny_sublstm.graph, fuse_elementwise=False)
        fused = build_units(tiny_sublstm.graph, fuse_elementwise=True)
        assert len(fused) < len(plain)

    def test_gemm_library_selectable(self, tiny_scrnn):
        units = build_units(tiny_scrnn.graph, gemm_library="oai_1")
        gemms = [u for u in units if u.kernel.kind == "gemm"]
        assert gemms and all(u.kernel.library == "oai_1" for u in gemms)
