"""Tests for ExecutionPlan and Unit containers."""

import pytest

from repro.gpu.kernels import CopyLaunch, GemmLaunch
from repro.runtime import ExecutionPlan, Unit


def unit(uid, nodes=(1,), kernel=None):
    return Unit(uid, kernel or GemmLaunch(4, 4, 4, "cublas"), tuple(nodes))


class TestUnit:
    def test_host_only_unit(self):
        u = Unit(0, None, (3,), host_us=10.0)
        assert u.kernel is None

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Unit(0, None, (1,))
        with pytest.raises(ValueError):
            Unit(0, GemmLaunch(2, 2, 2, "cublas"), ())

    def test_default_epoch_unassigned(self):
        u = unit(0)
        assert u.epoch == -1 and u.super_epoch == -1


class TestExecutionPlan:
    def test_default_stream_zero(self):
        plan = ExecutionPlan(units=[unit(0), unit(1, (2,))])
        assert plan.stream(0) == 0
        assert plan.num_streams == 1

    def test_num_streams(self):
        plan = ExecutionPlan(units=[unit(0), unit(1, (2,))], stream_of={1: 2})
        assert plan.num_streams == 3

    def test_unit_by_id(self):
        u0, u1 = unit(0), unit(1, (2,))
        plan = ExecutionPlan(units=[u0, u1])
        assert plan.unit_by_id(1) is u1
        with pytest.raises(KeyError):
            plan.unit_by_id(99)

    def test_covering_allows_pack_copies_on_leaves(self):
        """Weight-pack prologues may reference leaves other units also
        reference -- that is not double coverage of compute."""
        pack = Unit(0, CopyLaunch(1024, label="pack_w"), (1, 2), label="pack_w")
        main = unit(1, (1, 5))
        plan = ExecutionPlan(units=[pack, main])
        plan.validate_covering()

    def test_covering_rejects_duplicate_compute(self):
        plan = ExecutionPlan(units=[unit(0, (5,)), unit(1, (5,))])
        with pytest.raises(ValueError):
            plan.validate_covering()

    def test_empty_plan(self):
        plan = ExecutionPlan(units=[])
        assert plan.num_streams == 1
        plan.validate_covering()
