"""Tests for plan lowering: unit dependencies, ordering, event insertion."""

import pytest

from repro.gpu import P100
from repro.gpu.kernels import ElementwiseLaunch, GemmLaunch
from repro.gpu.streams import HostComputeItem, HostSyncItem, LaunchItem
from repro.ir import Tracer
from repro.runtime import Dispatcher, ExecutionPlan, Unit, build_units
from repro.runtime.dispatcher import topological_units


@pytest.fixture()
def diamond():
    """x -> (a, b) -> c: the classic diamond dependency."""
    tr = Tracer("diamond")
    x = tr.input((8, 8))
    w1 = tr.param((8, 8))
    w2 = tr.param((8, 8))
    a = tr.matmul(x, w1)
    b = tr.matmul(x, w2)
    c = tr.add(a, b)
    tr.output(c)
    units = [
        Unit(0, GemmLaunch(8, 8, 8, "cublas"), (a.node.node_id,)),
        Unit(1, GemmLaunch(8, 8, 8, "cublas"), (b.node.node_id,)),
        Unit(2, ElementwiseLaunch(num_elements=64), (c.node.node_id,)),
    ]
    return tr.graph, units


class TestDependencies:
    def test_diamond_deps(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units)
        deps = Dispatcher(graph).unit_dependencies(plan)
        assert deps[0] == set() and deps[1] == set()
        assert deps[2] == {0, 1}

    def test_transparent_nodes(self):
        """Reshape/fill nodes pass dependencies through."""
        tr = Tracer()
        x = tr.input((4, 4))
        w = tr.param((4, 4))
        y = tr.matmul(x, w)
        z = tr.reshape(y, (16,))
        out = tr.sigmoid(z)
        units = [
            Unit(0, GemmLaunch(4, 4, 4, "cublas"), (y.node.node_id,)),
            Unit(1, ElementwiseLaunch(num_elements=16), (out.node.node_id,)),
        ]
        deps = Dispatcher(tr.graph).unit_dependencies(ExecutionPlan(units=units))
        assert deps[1] == {0}

    def test_model_deps_acyclic(self, tiny_sublstm):
        units = build_units(tiny_sublstm.graph)
        plan = ExecutionPlan(units=units)
        deps = Dispatcher(tiny_sublstm.graph).unit_dependencies(plan)
        order = topological_units(units, deps)
        assert len(order) == len(units)


class TestOrdering:
    def test_toposort_respects_deps(self, diamond):
        graph, units = diamond
        deps = {0: set(), 1: set(), 2: {0, 1}}
        order = [u.unit_id for u in topological_units(units, deps)]
        assert order.index(2) > order.index(0)
        assert order.index(2) > order.index(1)

    def test_cycle_raises(self, diamond):
        _graph, units = diamond
        with pytest.raises(ValueError):
            topological_units(units, {0: {2}, 1: set(), 2: {0}})

    def test_explicit_dispatch_order_honored(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units, dispatch_order=[1, 0, 2])
        lowered = Dispatcher(graph).lower(plan)
        launches = [i for i in lowered.items if isinstance(i, LaunchItem)]
        assert launches[0].kernel is units[1].kernel

    def test_bad_dispatch_order_rejected(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units, dispatch_order=[2, 0, 1])
        with pytest.raises(ValueError):
            Dispatcher(graph).lower(plan)

    def test_incomplete_dispatch_order_rejected(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units, dispatch_order=[0, 1])
        with pytest.raises(ValueError):
            Dispatcher(graph).lower(plan)


class TestEventInsertion:
    def test_single_stream_no_waits(self, diamond):
        graph, units = diamond
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=False))
        for item in lowered.items:
            if isinstance(item, LaunchItem):
                assert item.waits == ()

    def test_cross_stream_dependency_gets_event(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units, stream_of={0: 0, 1: 1, 2: 0}, profile=False)
        lowered = Dispatcher(graph).lower(plan)
        launches = [i for i in lowered.items if isinstance(i, LaunchItem)]
        consumer = launches[-1]
        assert consumer.waits  # waits on unit 1's event
        producers = [l for l in launches if l.record is not None]
        assert producers

    def test_same_stream_dependency_no_event(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units, stream_of={0: 0, 1: 0, 2: 0}, profile=False)
        lowered = Dispatcher(graph).lower(plan)
        launches = [i for i in lowered.items if isinstance(i, LaunchItem)]
        assert all(not l.waits for l in launches)

    def test_profile_events_added(self, diamond):
        graph, units = diamond
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=True))
        launches = [i for i in lowered.items if isinstance(i, LaunchItem)]
        assert all(l.record is not None for l in launches)

    def test_profile_restricted_to_unit_subset(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units, profile=True, profile_unit_ids=frozenset({1}))
        lowered = Dispatcher(graph).lower(plan)
        launches = [i for i in lowered.items if isinstance(i, LaunchItem)]
        assert sum(1 for l in launches if l.record is not None) == 1

    def test_barrier_inserted_after_unit(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units, barriers_after=frozenset({1}), profile=False)
        lowered = Dispatcher(graph).lower(plan)
        kinds = [type(i).__name__ for i in lowered.items]
        # a sync before the final end-of-batch sync
        assert kinds.count("HostSyncItem") == 2

    def test_trailing_sync_always_present(self, diamond):
        graph, units = diamond
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=False))
        assert isinstance(lowered.items[-1], HostSyncItem)


class TestHostUnits:
    def test_host_unit_emits_compute_item(self, diamond):
        graph, units = diamond
        units = units[:2] + [
            Unit(2, None, (units[2].node_ids[0],), host_us=25.0, label="host"),
        ]
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=False))
        assert any(isinstance(i, HostComputeItem) for i in lowered.items)

    def test_host_unit_syncs_on_device_deps(self, diamond):
        graph, units = diamond
        units = units[:2] + [
            Unit(2, None, (units[2].node_ids[0],), host_us=25.0, label="host"),
        ]
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=False))
        sync_positions = [
            idx for idx, i in enumerate(lowered.items) if isinstance(i, HostSyncItem)
        ]
        host_pos = next(
            idx for idx, i in enumerate(lowered.items) if isinstance(i, HostComputeItem)
        )
        assert any(p < host_pos for p in sync_positions)


class TestUnitValidation:
    def test_unit_needs_kernel_or_host_work(self):
        with pytest.raises(ValueError):
            Unit(0, None, (1,))

    def test_unit_needs_nodes(self):
        with pytest.raises(ValueError):
            Unit(0, GemmLaunch(2, 2, 2, "cublas"), ())

    def test_double_covering_rejected(self, diamond):
        graph, units = diamond
        units.append(Unit(3, GemmLaunch(8, 8, 8, "cublas"), units[0].node_ids))
        plan = ExecutionPlan(units=units)
        with pytest.raises(ValueError):
            plan.validate_covering()


class TestHostOnlyProducers:
    """Regression: completion events used to be created for kernel-less
    (host-only) producers, but only LaunchItems ever record events -- so a
    cross-stream consumer deadlocked waiting on an event nobody stamps,
    and a host->host chain hit "sync on unrecorded event".  Kernel-less
    producers are now ordered by dispatch-thread serialization instead."""

    @staticmethod
    def _host_feeds_kernel():
        tr = Tracer("hostprod")
        x = tr.input((8, 8))
        w = tr.param((8, 8))
        y = tr.tanh(x)
        z = tr.matmul(y, w)
        tr.output(z)
        units = [
            Unit(0, None, (y.node.node_id,), host_us=25.0, label="host-prod"),
            Unit(1, GemmLaunch(8, 8, 8, "cublas"), (z.node.node_id,)),
        ]
        return tr.graph, units

    def test_host_producer_cross_stream_consumer_runs(self):
        from repro.gpu import P100
        from repro.runtime import Executor

        graph, units = self._host_feeds_kernel()
        plan = ExecutionPlan(units=units, stream_of={1: 1}, profile=False)
        result = Executor(graph, P100).run(plan)
        assert result.total_time_us > 0

    def test_host_producer_schedule_has_no_ghost_waits(self):
        graph, units = self._host_feeds_kernel()
        plan = ExecutionPlan(units=units, stream_of={1: 1}, profile=False)
        lowered = Dispatcher(graph).lower(plan)
        recorded = {
            i.record for i in lowered.items
            if isinstance(i, LaunchItem) and i.record is not None
        }
        for item in lowered.items:
            if isinstance(item, LaunchItem):
                assert set(item.waits) <= recorded

    def test_host_to_host_chain_runs(self):
        from repro.gpu import P100
        from repro.runtime import Executor

        tr = Tracer("hostchain")
        x = tr.input((8, 8))
        y = tr.tanh(x)
        z = tr.sigmoid(y)
        tr.output(z)
        units = [
            Unit(0, None, (y.node.node_id,), host_us=10.0, label="h0"),
            Unit(1, None, (z.node.node_id,), host_us=10.0, label="h1"),
        ]
        plan = ExecutionPlan(units=units, profile=False)
        result = Executor(tr.graph, P100).run(plan)
        assert result.total_time_us > 0

    def test_host_producer_schedule_validates(self):
        from repro.check import validate_schedule

        graph, units = self._host_feeds_kernel()
        plan = ExecutionPlan(units=units, stream_of={1: 1}, profile=False)
        report = validate_schedule(Dispatcher(graph).lower(plan))
        assert report.ok, report.summary()


class TestItemUnits:
    """item_units maps exactly the work items (launches + host computes)
    back to their emitting units; the validator depends on both directions
    of that contract."""

    def test_every_work_item_attributed(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units, stream_of={0: 0, 1: 1, 2: 0})
        lowered = Dispatcher(graph).lower(plan)
        for idx, item in enumerate(lowered.items):
            if isinstance(item, (LaunchItem, HostComputeItem)):
                assert idx in lowered.item_units
            else:
                assert idx not in lowered.item_units
        assert set(lowered.item_units.values()) == {u.unit_id for u in units}

    def test_pre_copies_attributed_to_owner(self, diamond):
        from repro.gpu.kernels import CopyLaunch

        graph, units = diamond
        units[2] = Unit(
            units[2].unit_id, units[2].kernel, units[2].node_ids,
            pre_copies=(CopyLaunch(bytes_moved=4096),),
        )
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units))
        owner = [
            lowered.item_units[idx]
            for idx, item in enumerate(lowered.items)
            if isinstance(item, LaunchItem) and item.kernel.kind == "copy"
        ]
        assert owner == [units[2].unit_id]

    def test_host_items_attributed(self, diamond):
        graph, units = diamond
        units = units[:2] + [
            Unit(2, None, (units[2].node_ids[0],), host_us=25.0, label="host"),
        ]
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=False))
        host_idx = next(
            idx for idx, i in enumerate(lowered.items)
            if isinstance(i, HostComputeItem)
        )
        assert lowered.item_units[host_idx] == 2


class TestRecordUnits:
    """Lowering metadata for the trace exporter: one unit id per launched
    kernel, in record order, pre-copies tagged with their owner."""

    def test_record_units_cover_every_launch(self, diamond):
        graph, units = diamond
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units))
        launches = [i for i in lowered.items if isinstance(i, LaunchItem)]
        assert len(lowered.record_units) == len(launches)
        assert set(lowered.record_units) == {u.unit_id for u in units}

    def test_pre_copies_tagged_with_owner(self, diamond):
        from repro.gpu.kernels import CopyLaunch

        graph, units = diamond
        copy = CopyLaunch(bytes_moved=4096)
        units[2] = Unit(
            units[2].unit_id, units[2].kernel, units[2].node_ids,
            pre_copies=(copy,),
        )
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units))
        uid = units[2].unit_id
        main_idx = lowered.unit_record_index[uid]
        assert lowered.record_units[main_idx] == uid
        assert lowered.record_units[main_idx - 1] == uid  # the pre-copy
