"""Tests for the executor's measurement extraction."""

import pytest

from repro.gpu import P100
from repro.gpu.kernels import CopyLaunch, GemmLaunch
from repro.ir import Tracer
from repro.runtime import ExecutionPlan, Executor, Unit, build_units


@pytest.fixture()
def chain_graph():
    tr = Tracer("chain")
    x = tr.input((32, 64))
    w1 = tr.param((64, 64))
    w2 = tr.param((64, 64))
    y = tr.matmul(x, w1)
    z = tr.matmul(y, w2)
    tr.output(z)
    return tr.graph, y.node.node_id, z.node.node_id


class TestUnitTimes:
    def test_unit_times_match_kernel_durations(self, chain_graph):
        graph, yid, zid = chain_graph
        units = [
            Unit(0, GemmLaunch(32, 64, 64, "cublas"), (yid,)),
            Unit(1, GemmLaunch(32, 64, 64, "cublas"), (zid,)),
        ]
        result = Executor(graph, P100).run(ExecutionPlan(units=units))
        expected = GemmLaunch(32, 64, 64, "cublas").duration_us(P100)
        assert result.unit_times[0] == pytest.approx(expected)
        assert result.unit_times[1] == pytest.approx(expected)

    def test_pre_copies_charged_to_unit(self, chain_graph):
        graph, yid, zid = chain_graph
        copy = CopyLaunch(bytes_moved=1_000_000)
        units = [
            Unit(0, GemmLaunch(32, 64, 64, "cublas"), (yid,), pre_copies=(copy,)),
            Unit(1, GemmLaunch(32, 64, 64, "cublas"), (zid,)),
        ]
        result = Executor(graph, P100).run(ExecutionPlan(units=units))
        assert result.unit_times[0] > result.unit_times[1]
        assert result.unit_times[0] == pytest.approx(
            result.unit_times[1] + copy.duration_us(P100), rel=1e-6
        )

    def test_total_includes_launch_overheads(self, chain_graph):
        graph, yid, zid = chain_graph
        units = [
            Unit(0, GemmLaunch(32, 64, 64, "cublas"), (yid,)),
            Unit(1, GemmLaunch(32, 64, 64, "cublas"), (zid,)),
        ]
        result = Executor(graph, P100).run(ExecutionPlan(units=units, profile=False))
        assert result.total_time_us > sum(result.unit_times.values())


class TestEpochMetrics:
    def test_epoch_metric_cumulative(self, chain_graph):
        graph, yid, zid = chain_graph
        u0 = Unit(0, GemmLaunch(32, 64, 64, "cublas"), (yid,))
        u1 = Unit(1, GemmLaunch(32, 64, 64, "cublas"), (zid,))
        u0.super_epoch, u0.epoch = 0, 0
        u1.super_epoch, u1.epoch = 0, 1
        result = Executor(graph, P100).run(ExecutionPlan(units=[u0, u1]))
        m0 = result.epoch_metrics[(0, 0)]
        m1 = result.epoch_metrics[(0, 1)]
        assert m1 > m0 > 0

    def test_unassigned_units_have_no_epoch_metrics(self, chain_graph):
        graph, yid, zid = chain_graph
        units = [
            Unit(0, GemmLaunch(32, 64, 64, "cublas"), (yid,)),
            Unit(1, GemmLaunch(32, 64, 64, "cublas"), (zid,)),
        ]
        result = Executor(graph, P100).run(ExecutionPlan(units=units))
        assert result.epoch_metrics == {}


class TestProfilingOverhead:
    def test_overhead_fraction_bounded(self, tiny_sublstm):
        # every unit profiled on a tiny graph: the worst case; Astra's
        # region-of-interest profiling (<0.5%) is checked in core tests
        units = build_units(tiny_sublstm.graph)
        plan = ExecutionPlan(units=units, profile=True)
        result = Executor(tiny_sublstm.graph, P100).run(plan)
        assert 0 < result.profiling_overhead_fraction < 0.10

    def test_no_overhead_without_profiling(self, tiny_sublstm):
        units = build_units(tiny_sublstm.graph)
        plan = ExecutionPlan(units=units, profile=False)
        result = Executor(tiny_sublstm.graph, P100).run(plan)
        assert result.profiling_overhead_us == 0.0

    def test_determinism_across_runs(self, tiny_sublstm):
        executor = Executor(tiny_sublstm.graph, P100)
        plan = ExecutionPlan(units=build_units(tiny_sublstm.graph), profile=False)
        t1 = executor.run(plan).total_time_us
        t2 = executor.run(plan).total_time_us
        assert t1 == t2


class TestMeasurementEdgeCases:
    def test_pre_copy_walk_never_wraps_negative(self, chain_graph):
        """Regression: a hand-built schedule that maps a unit with
        pre-copies to the head of the record list must not walk to a
        negative index (which would silently charge the *last* record)."""
        from repro.gpu.streams import HostSyncItem, LaunchItem
        from repro.runtime.dispatcher import LoweredSchedule

        graph, yid, zid = chain_graph
        main = GemmLaunch(32, 64, 64, "cublas")
        other = GemmLaunch(32, 64, 64, "oai_1")
        copy = CopyLaunch(bytes_moved=1_000_000)
        # the unit claims a pre-copy, but its main kernel is record 0
        unit = Unit(0, main, (yid,), pre_copies=(copy,))
        plan = ExecutionPlan(units=[unit])
        lowered = LoweredSchedule(
            items=[LaunchItem(main, 0), LaunchItem(other, 0), HostSyncItem()],
            unit_record_index={0: 0},
            unit_stream={0: 0},
            plan=plan,
            graph=graph,
        )
        result = Executor(graph, P100).run_lowered(lowered)
        # only the main kernel is charged; records[-1] (the other GEMM)
        # must not leak into the measurement
        assert result.unit_times[0] == pytest.approx(main.duration_us(P100))

    def test_overhead_fraction_zero_total(self):
        from repro.gpu.streams import ExecutionResult
        from repro.runtime.executor import MiniBatchResult

        raw = ExecutionResult(
            total_time_us=0.0, cpu_time_us=0.0, records=[], event_times={}
        )
        result = MiniBatchResult(
            total_time_us=0.0, cpu_time_us=0.0, profiling_overhead_us=0.0,
            unit_times={}, epoch_metrics={}, raw=raw,
        )
        assert result.profiling_overhead_fraction == 0.0

    def test_negative_super_epoch_excluded_from_epoch_metrics(self, chain_graph):
        graph, yid, zid = chain_graph
        u0 = Unit(0, GemmLaunch(32, 64, 64, "cublas"), (yid,))
        u1 = Unit(1, GemmLaunch(32, 64, 64, "cublas"), (zid,))
        u0.super_epoch, u0.epoch = -1, 0   # pre-assignment sentinel
        u1.super_epoch, u1.epoch = 0, 0
        result = Executor(graph, P100).run(ExecutionPlan(units=[u0, u1]))
        assert set(result.epoch_metrics) == {(0, 0)}

    def test_all_negative_super_epochs_yield_empty_metrics(self, chain_graph):
        graph, yid, zid = chain_graph
        u0 = Unit(0, GemmLaunch(32, 64, 64, "cublas"), (yid,))
        u1 = Unit(1, GemmLaunch(32, 64, 64, "cublas"), (zid,))
        u0.super_epoch, u0.epoch = -1, -1
        u1.super_epoch, u1.epoch = -1, -1
        result = Executor(graph, P100).run(ExecutionPlan(units=[u0, u1]))
        assert result.epoch_metrics == {}
