"""Tests for the ASCII timeline renderer and utilization metrics."""

import pytest

from repro.gpu import GemmLaunch, HostSyncItem, LaunchItem, P100, StreamSimulator
from repro.runtime.timeline import (
    TimelineOptions,
    overlap_fraction,
    render_timeline,
    utilization,
)


def run(items):
    return StreamSimulator(P100).run(items)


@pytest.fixture()
def two_stream_result():
    g = lambda: GemmLaunch(256, 1024, 1024, "cublas")
    return run([LaunchItem(g(), 0), LaunchItem(g(), 1), HostSyncItem()])


@pytest.fixture()
def one_stream_result():
    g = lambda: GemmLaunch(256, 1024, 1024, "cublas")
    return run([LaunchItem(g(), 0), LaunchItem(g(), 0), HostSyncItem()])


class TestRender:
    def test_rows_per_stream(self, two_stream_result):
        text = render_timeline(two_stream_result)
        assert "stream0" in text and "stream1" in text
        assert "cpu" in text

    def test_gemm_glyph(self, two_stream_result):
        assert "#" in render_timeline(two_stream_result)

    def test_width_respected(self, two_stream_result):
        text = render_timeline(two_stream_result, TimelineOptions(width=40))
        for line in text.splitlines():
            if line.startswith(("stream", "cpu")):
                assert len(line) <= 40 + 10

    def test_no_legend_option(self, two_stream_result):
        text = render_timeline(
            two_stream_result, TimelineOptions(show_legend=False)
        )
        assert "legend" not in text

    def test_empty_result(self):
        text = render_timeline(run([HostSyncItem()]))
        assert "0 kernels" in text


class TestMetrics:
    def test_utilization_per_stream(self, two_stream_result):
        util = utilization(two_stream_result)
        assert set(util) == {0, 1}
        assert all(0 < u <= 1 for u in util.values())

    def test_overlap_positive_for_two_streams(self, two_stream_result):
        assert overlap_fraction(two_stream_result) > 0.5

    def test_overlap_zero_for_single_stream(self, one_stream_result):
        assert overlap_fraction(one_stream_result) == pytest.approx(0.0, abs=1e-9)

    def test_astra_streams_increase_overlap(self, small_sublstm, device):
        """Stream adaptation should produce measurable kernel overlap."""
        from repro import AstraSession
        from repro.runtime import Executor

        fk = AstraSession(small_sublstm, features="FK", seed=1).optimize()
        fks = AstraSession(small_sublstm, features="FKS", seed=1).optimize()
        executor = Executor(small_sublstm.graph, device)
        fk_overlap = overlap_fraction(executor.run(fk.astra.best_plan).raw)
        fks_overlap = overlap_fraction(executor.run(fks.astra.best_plan).raw)
        assert fks_overlap >= fk_overlap
