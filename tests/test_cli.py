"""Tests for the command-line front-end."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_defaults(self):
        args = make_parser().parse_args(["optimize"])
        assert args.model == "sublstm"
        assert args.features == "all"
        assert args.device == "P100"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["optimize", "--model", "transformer"])


class TestCommands:
    ARGS = ["--model", "sublstm", "--batch", "4", "--seq-len", "2",
            "--features", "F", "--budget", "20"]

    def test_optimize(self, capsys):
        assert main(["optimize", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_optimize_verbose(self, capsys):
        assert main(["optimize", "--verbose", *self.ARGS]) == 0
        assert "chosen configuration" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--batches", "4,8", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3

    def test_baselines(self, capsys):
        assert main(["baselines", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "native" in out and "astra" in out
        assert "not applicable" in out  # subLSTM is long-tail

    def test_inspect(self, capsys):
        assert main(["inspect", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "fusion groups" in out

    def test_inspect_with_streams(self, capsys):
        assert main(["inspect", "--features", "FKS", "--model", "sublstm",
                     "--batch", "4", "--seq-len", "2"]) == 0
        assert "stream phase" in capsys.readouterr().out

    def test_no_embedding_flag(self, capsys):
        assert main(["inspect", "--no-embedding", *self.ARGS]) == 0
