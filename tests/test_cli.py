"""Tests for the command-line front-end."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_defaults(self):
        args = make_parser().parse_args(["optimize"])
        assert args.model == "sublstm"
        assert args.features == "all"
        assert args.device == "P100"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["optimize", "--model", "transformer"])


class TestCommands:
    ARGS = ["--model", "sublstm", "--batch", "4", "--seq-len", "2",
            "--features", "F", "--budget", "20"]

    def test_optimize(self, capsys):
        assert main(["optimize", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_optimize_verbose(self, capsys):
        assert main(["optimize", "--verbose", *self.ARGS]) == 0
        assert "chosen configuration" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--batches", "4,8", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3

    def test_baselines(self, capsys):
        assert main(["baselines", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "native" in out and "astra" in out
        assert "not applicable" in out  # subLSTM is long-tail

    def test_inspect(self, capsys):
        assert main(["inspect", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "fusion groups" in out

    def test_inspect_with_streams(self, capsys):
        assert main(["inspect", "--features", "FKS", "--model", "sublstm",
                     "--batch", "4", "--seq-len", "2"]) == 0
        assert "stream phase" in capsys.readouterr().out

    def test_no_embedding_flag(self, capsys):
        assert main(["inspect", "--no-embedding", *self.ARGS]) == 0


class TestObservabilityFlags:
    ARGS = ["--model", "sublstm", "--batch", "4", "--seq-len", "2",
            "--features", "F", "--budget", "20"]

    def test_optimize_json(self, capsys):
        import json

        assert main(["optimize", "--json", *self.ARGS]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["model"] == "sublstm"
        assert doc["convergence_curve"]
        best = [v for _s, v in doc["convergence_curve"]]
        assert best == sorted(best, reverse=True)
        assert all("index_hit_rate" in p for p in doc["phases"])
        assert "profile_index.hit_rate" in doc["metrics"]
        assert doc["speedup_over_native"] > 0

    def test_optimize_metrics_and_report_out(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        report_path = tmp_path / "run.jsonl"
        assert main(["optimize", "--metrics-out", str(metrics_path),
                     "--report-out", str(report_path), *self.ARGS]) == 0
        assert "speedup" in capsys.readouterr().out  # human output intact
        metrics = json.loads(metrics_path.read_text())
        assert "astra.configs_explored" in metrics["metrics"]
        lines = report_path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert all({"phase", "context", "assignment_delta", "time_us"}
                   <= set(r) for r in records)

    def test_sweep_json(self, capsys):
        import json

        assert main(["sweep", "--json", "--batches", "4,8", *self.ARGS]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [row["batch"] for row in doc["sweep"]] == [4, 8]
        assert all(row["convergence_curve"] for row in doc["sweep"])


class TestTraceCommand:
    def test_trace_positional_model(self, capsys, tmp_path):
        import json

        from repro.obs.trace import PID_GPU, validate_chrome_trace

        out = tmp_path / "out.trace.json"
        assert main(["trace", "scrnn", "--batch", "8", "--budget", "200",
                     "-o", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        summary = validate_chrome_trace(doc)
        gpu_tracks = {tid for pid, tid in summary["tracks"] if pid == PID_GPU}
        assert len(gpu_tracks) >= 2          # stream adaptation won
        assert (0, 0) in summary["tracks"]   # CPU dispatch track
        gemms = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e.get("cat") == "gemm"]
        assert gemms
        assert all({"library", "waves", "unit"} <= set(e["args"]) for e in gemms)

    def test_trace_native_plan(self, capsys, tmp_path):
        out = tmp_path / "native.trace.json"
        assert main(["trace", "sublstm", "--batch", "4", "--seq-len", "2",
                     "--plan", "native", "-o", str(out)]) == 0
        assert out.exists()

    def test_trace_default_output_name(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "sublstm", "--batch", "4", "--seq-len", "2",
                     "--plan", "native"]) == 0
        assert (tmp_path / "sublstm.trace.json").exists()

    def test_trace_requires_model(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["trace"])


class TestResilienceFlags:
    ARGS = ["--model", "sublstm", "--batch", "4", "--seq-len", "2",
            "--features", "F", "--budget", "20"]

    def test_optimize_robust(self, capsys):
        assert main(["optimize", "--robust", *self.ARGS]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_optimize_reports_memory(self, capsys):
        assert main(["optimize", *self.ARGS]) == 0
        assert "arena" in capsys.readouterr().out

    def test_preempt_then_resume(self, capsys, tmp_path):
        from repro.faults import FAULT_PREEMPT, FaultPlan

        faults = tmp_path / "faults.json"
        faults.write_text(FaultPlan.single(FAULT_PREEMPT, at=4).dumps())
        ckpt = tmp_path / "ck.json"
        # first run is preempted: exit 3, state saved
        assert main(["optimize", "--faults", str(faults),
                     "--checkpoint", str(ckpt), *self.ARGS]) == 3
        err = capsys.readouterr().err
        assert "preempted at mini-batch 4" in err
        assert ckpt.exists()
        # rerun resumes from the checkpoint and completes
        assert main(["optimize", "--faults", str(faults),
                     "--checkpoint", str(ckpt), *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "faults injected" in out

    def test_faults_flag_injects(self, capsys, tmp_path):
        from repro.faults import FAULT_SLOWDOWN, FaultPlan

        faults = tmp_path / "faults.json"
        faults.write_text(
            FaultPlan.single(FAULT_SLOWDOWN, rate=0.3, factor=4.0).dumps()
        )
        assert main(["optimize", "--robust", "--faults", str(faults),
                     *self.ARGS]) == 0
        assert "slowdown" in capsys.readouterr().out


class TestChaosCommand:
    def test_chaos_sweep_json(self, capsys):
        import json

        assert main(["chaos", "scrnn", "--batch", "4", "--seq-len", "2",
                     "--budget", "30", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        names = [c["name"] for c in doc["cells"]]
        assert names[0] == "clean" and "storm" in names

    def test_chaos_table(self, capsys):
        assert main(["chaos", "scrnn", "--batch", "4", "--seq-len", "2",
                     "--budget", "30"]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep: scrnn" in out
        assert out.strip().endswith("OK")

    def test_chaos_requires_model(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["chaos"])


class TestAnalyzeCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        out = tmp_path / "sublstm.trace.json"
        assert main(["trace", "sublstm", "--batch", "4", "--seq-len", "2",
                     "--plan", "native", "-o", str(out)]) == 0
        capsys.readouterr()
        return out

    def test_analyze_defaults(self):
        args = make_parser().parse_args(["analyze", "t.trace.json"])
        assert args.top == 10 and args.device == "P100"
        assert args.scale is None and args.swap is None

    def test_analyze_table(self, trace_file, capsys):
        assert main(["analyze", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "critical" in out

    def test_analyze_json_with_projection(self, trace_file, capsys):
        import json

        assert main(["analyze", str(trace_file), "--json",
                     "--scale", "0:0.5"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_time_us"] > 0
        assert len(doc["projections"]) == 1
        assert doc["projections"][0]["changes"][0]["kind"] == "scale"

    def test_analyze_bad_swap_format_exits(self, trace_file):
        with pytest.raises(SystemExit):
            main(["analyze", str(trace_file), "--swap", "nonsense"])

    def test_analyze_unprojectable_swap_exits(self, trace_file):
        with pytest.raises(SystemExit, match="cannot project"):
            main(["analyze", str(trace_file), "--swap", "0:no_such_library"])


class TestExplainCommand:
    ARGS = ["sublstm", "--batch", "4", "--seq-len", "2",
            "--features", "FK", "--budget", "60"]

    def test_explain_table(self, capsys):
        assert main(["explain", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "winner" in out
        assert "ms/mini-batch" in out

    def test_explain_json(self, capsys):
        import json

        assert main(["explain", "--json", *self.ARGS]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["model"] == "sublstm"
        assert doc["provenance"]["events"]
        assert doc["assignment"]

    def test_explain_requires_model(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["explain"])


class TestBenchCompare:
    ARGS = ["bench", "sublstm", "--batch", "4", "--seq-len", "2",
            "--budget", "60", "--quick", "--workers", "2"]

    def test_compare_pass_and_fail(self, capsys, tmp_path, monkeypatch):
        import copy
        import json

        monkeypatch.chdir(tmp_path)
        doc_path = tmp_path / "doc.json"
        assert main([*self.ARGS, "-o", str(doc_path)]) == 0
        capsys.readouterr()
        doc = json.loads(doc_path.read_text())

        # identical winner, tiny baseline ratios: improvement, must pass
        # (the wall-clock leg speedups get the same treatment as the
        # throughput ratio -- two timed runs of a 60-budget job on a
        # loaded host can differ by far more than the 20% gate)
        good = copy.deepcopy(doc)
        for variant in good["variants"].values():
            variant["configs_per_sec_ratio"] = 1e-6
            for leg in ("warm_speedup", "learned_speedup"):
                if variant.get(leg) is not None:
                    variant[leg] = 1e-6
        good_path = tmp_path / "good.json"
        good_path.write_text(json.dumps(good))
        assert main([*self.ARGS, "-o", str(doc_path),
                     "--compare", str(good_path)]) == 0
        assert "bench compare" in capsys.readouterr().out

        # a changed winner must fail the gate
        bad = copy.deepcopy(good)
        for variant in bad["variants"].values():
            variant["winning_assignment"] = "something-else"
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps(bad))
        assert main([*self.ARGS, "-o", str(doc_path),
                     "--compare", str(bad_path)]) == 1
        assert "winning assignment changed" in capsys.readouterr().out
