"""Shared corpus and trained-model fixtures for the learn tests.

Harvesting runs four exhaustive explorations (scrnn/milstm x P100/V100)
once per session; training is deterministic in (corpus, seed), so every
test sees the identical model.
"""

from __future__ import annotations

import pytest

from repro.gpu import DEVICES
from repro.learn import LearnedCostModel, harvest_run
from repro.models import ModelConfig, build_milstm, build_scrnn

TINY = ModelConfig(batch_size=4, seq_len=3, hidden_size=32, embed_size=32,
                   vocab_size=50)
BUILDERS = {"scrnn": build_scrnn, "milstm": build_milstm}
CORPUS_DEVICES = ("P100", "V100")
FIT_SEED = 7


@pytest.fixture(scope="session")
def corpus():
    records = []
    for name in sorted(BUILDERS):
        for device_name in CORPUS_DEVICES:
            records.extend(harvest_run(
                BUILDERS[name](TINY), DEVICES[device_name], "FK",
                seed=0, budget=400,
            ))
    return records


@pytest.fixture(scope="session")
def trained(corpus):
    return LearnedCostModel.fit(corpus, seed=FIT_SEED)
