"""Mutation-style oracle for the feature extractor.

The feature vector is a serialization contract: training and serving
must extract the identical column layout, and the physical columns must
point the right way (more waves is never evidence of a faster kernel).
These tests attack both failure modes directly: directional sanity on
*real* choice pairs from the harvested corpus, and a mutant-killing
check proving that a misaligned serve-side extractor (swapped, zeroed,
shifted or sign-flipped columns) produces errors the calibrated band
cannot miss."""

import itertools
from collections import defaultdict

from repro.core.enumerator import AstraFeatures, Enumerator
from repro.gpu import DEVICES
from repro.gpu.cost_model import units_cost_us
from repro.learn import FEATURE_NAMES, choice_features, feature_digest

from .conftest import BUILDERS, TINY

EST = FEATURE_NAMES.index("est_us")
WAVES = FEATURE_NAMES.index("waves")


def _real_pairs(corpus):
    """Choice pairs of the same variable on the same device."""
    by_var = defaultdict(list)
    for record in corpus:
        by_var[(record.device, record.var)].append(record)
    for group in by_var.values():
        yield from itertools.combinations(group, 2)


class TestExtractor:
    def test_layout_matches_contract(self, corpus):
        assert len(set(FEATURE_NAMES)) == len(FEATURE_NAMES)
        for record in corpus:
            assert len(record.features) == len(FEATURE_NAMES)

    def test_digest_pins_the_layout(self):
        assert feature_digest() == feature_digest()
        assert len(feature_digest()) == 16

    def test_est_column_is_the_analytic_cost(self):
        """Column 0 is the FK pre-ranker's exact estimate -- extracted
        from the same per-variable unit emission it prices."""
        model = BUILDERS["scrnn"](TINY)
        device = DEVICES["P100"]
        enum = Enumerator(model.graph, device, AstraFeatures.preset("FK"))
        strategy = enum.strategies[0]
        tree = enum.build_fk_tree(strategy)
        checked = 0
        for var in tree.variables():
            if var.metric_kind != "units":
                continue
            for choice in var.choices:
                features = choice_features(enum, strategy, var, choice, device)
                units = enum.units_for_choice(strategy, var, choice)
                assert features[EST] == units_cost_us(units, device)
                checked += 1
        assert checked > 10


class TestDirectionalOracle:
    def test_more_waves_is_not_faster(self, trained, corpus):
        """Among real alternatives of one variable, whenever the slower
        measured choice also occupies more GEMM waves, the model must
        not invert the pair -- the sign-error canary."""
        checked = 0
        for a, b in _real_pairs(corpus):
            if a.features[WAVES] > b.features[WAVES] \
                    and a.target_us > b.target_us:
                assert trained.predict(a.features) > \
                    trained.predict(b.features), (a.var, a.choice, b.choice)
                checked += 1
        assert checked >= 10, "oracle found too few wave-ordered pairs"

    def test_pairwise_ranking_matches_measurement(self, trained, corpus):
        """Every measured ordering between two choices of one variable is
        reproduced by the model -- rank inversions are what would make
        top-k pruning discard a winner."""
        checked = 0
        for a, b in _real_pairs(corpus):
            gap = abs(a.target_us - b.target_us)
            if a.features == b.features or \
                    gap <= 1e-9 * max(abs(a.target_us), abs(b.target_us)):
                continue  # same point (or float noise): no ordering to test
            predicted = trained.predict(a.features) - trained.predict(b.features)
            assert (predicted > 0) == (a.target_us > b.target_us)
            checked += 1
        assert checked >= 100


def _swap(row, i, j):
    row = list(row)
    row[i], row[j] = row[j], row[i]
    return row


MUTANTS = {
    "swap est_us<->waves": lambda row: _swap(row, EST, WAVES),
    "swap est_us<->log_flops": lambda row: _swap(row, EST, 1),
    "zero est_us": lambda row: [0.0] + list(row[1:]),
    "negate est_us": lambda row: [-row[EST]] + list(row[1:]),
    "shift columns by one": lambda row: list(row[1:]) + [row[0]],
}


class TestMutationKilling:
    def test_clean_extractor_stays_inside_the_band(self, trained, corpus):
        band = max(trained.quantiles["q99"], 1e-9)
        for record in corpus:
            error = abs(trained.predict(record.features) - record.target_us)
            assert error <= max(abs(record.target_us), 1.0) * band * 10 + 1e-6

    def test_misaligned_extractors_are_killed(self, trained, corpus):
        """Each mutant simulates a serve-side extractor whose column
        layout drifted from the training layout.  Every one must blow
        far past the calibrated q99 band on the training corpus itself
        -- so the what-if gate (or the band check) catches it instead of
        silently mis-ranking."""
        band = max(trained.quantiles["q99"], 1e-9)
        for name, mutate in MUTANTS.items():
            worst = 0.0
            for record in corpus:
                prediction = trained.predict(mutate(list(record.features)))
                worst = max(
                    worst,
                    abs(prediction - record.target_us)
                    / max(abs(record.target_us), 1e-9),
                )
            assert worst > 100 * band and worst > 0.05, (
                f"mutant {name!r} survived: worst relative error {worst}"
            )
