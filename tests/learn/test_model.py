"""Artifact contract tests: training determinism, bit-identical
serialization round-trips (hypothesis), checksum/staleness verification
order, the session-level fallback, and profile-store artifact handling
(see docs/learning.md)."""

import copy
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.session import AstraSession
from repro.gpu import DEVICES
from repro.learn import (
    ARTIFACT_VERSION,
    LearnedCostModel,
    ModelArtifactError,
    StaleModelError,
    artifact_fingerprint,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.store import ProfileStore

from .conftest import BUILDERS, FIT_SEED, TINY


def _forge(model: LearnedCostModel, **overrides) -> str:
    """An artifact with fields overridden and the checksum recomputed --
    intact by the integrity check, different by the staleness checks."""
    body = model.to_dict()
    body.update(overrides)
    body["sha256"] = artifact_fingerprint(body)
    return json.dumps(body)


class TestTraining:
    def test_fit_is_deterministic(self, corpus):
        first = LearnedCostModel.fit(corpus, seed=FIT_SEED)
        second = LearnedCostModel.fit(list(corpus), seed=FIT_SEED)
        assert first.dumps() == second.dumps()
        assert first.fingerprint == second.fingerprint

    def test_empty_corpus_refused(self):
        with pytest.raises(ModelArtifactError):
            LearnedCostModel.fit([])

    def test_calibration_is_kfold_and_tight(self, trained, corpus):
        """Base-clock targets equal the analytic estimate, so the staged
        fit is exact and the out-of-fold residual quantiles collapse."""
        assert trained.calibration == "kfold"
        assert trained.records == len(corpus)
        assert trained.quantiles["q99"] < 1e-6
        assert trained.confident()

    def test_tiny_corpus_falls_back_to_insample(self, corpus):
        model = LearnedCostModel.fit(corpus[:4], seed=FIT_SEED)
        assert model.calibration == "insample"
        assert not model.confident()

    def test_supports_trained_devices_only(self, trained):
        feature_set = trained.feature_sets[0]
        assert trained.supports("P100", feature_set)
        assert trained.supports("V100", feature_set)
        assert not trained.supports("A100-like", feature_set)
        assert not trained.supports("P100", "somewhere-else")

    def test_band_brackets_prediction(self, trained, corpus):
        lo, pred, hi = trained.band(corpus[0].features)
        assert lo <= pred <= hi


class TestRoundTrip:
    """Satellite: train -> dumps -> loads -> predict is bit-identical."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), stride=st.integers(1, 4))
    def test_roundtrip_bit_identical(self, corpus, seed, stride):
        subset = corpus[::stride]
        model = LearnedCostModel.fit(subset, seed=seed)
        text = model.dumps()
        loaded = LearnedCostModel.loads(text)
        assert loaded.dumps() == text
        assert loaded.fingerprint == model.fingerprint
        for record in corpus:
            assert loaded.predict(record.features) == \
                model.predict(record.features)
            assert loaded.band(record.features) == model.band(record.features)

    @settings(max_examples=20, deadline=None)
    @given(field=st.sampled_from([
        "anchor_slope", "anchor_bias", "records", "weights", "quantiles",
    ]))
    def test_any_tamper_without_rechecksum_is_corrupt(self, trained, field):
        """Flipping any body field invalidates the checksum, so a
        tampered artifact is *corrupt*, never silently reinterpreted."""
        body = trained.to_dict()
        original = body[field]
        body[field] = 0 if not isinstance(original, (list, dict)) else []
        with pytest.raises(ModelArtifactError) as excinfo:
            LearnedCostModel.loads(json.dumps(body))
        assert not isinstance(excinfo.value, StaleModelError)


class TestVerificationOrder:
    """Mirrors the store's segment classifier: integrity before schema."""

    def test_unparseable_is_corrupt(self):
        with pytest.raises(ModelArtifactError):
            LearnedCostModel.loads("not json {")

    def test_wrong_kind_is_corrupt(self):
        with pytest.raises(ModelArtifactError):
            LearnedCostModel.loads(json.dumps({"artifact": "something-else"}))

    def test_stale_schema_refused(self, trained):
        with pytest.raises(StaleModelError):
            LearnedCostModel.loads(_forge(trained, schema="simulator-v999"))

    def test_stale_version_refused(self, trained):
        with pytest.raises(StaleModelError):
            LearnedCostModel.loads(
                _forge(trained, version=ARTIFACT_VERSION + 1)
            )

    def test_stale_feature_layout_refused(self, trained):
        with pytest.raises(StaleModelError):
            LearnedCostModel.loads(
                _forge(trained, features_digest="0000000000000000")
            )

    def test_checksum_outranks_schema(self, trained):
        """A corrupt artifact whose schema field *also* mismatches must
        classify as corrupt: its fields cannot be believed."""
        body = trained.to_dict()
        body["schema"] = "simulator-v999"  # checksum left stale on purpose
        with pytest.raises(ModelArtifactError) as excinfo:
            LearnedCostModel.loads(json.dumps(body))
        assert not isinstance(excinfo.value, StaleModelError)

    def test_missing_field_is_corrupt(self, trained):
        body = trained.to_dict()
        del body["weights"]
        body["sha256"] = artifact_fingerprint(body)
        with pytest.raises(ModelArtifactError) as excinfo:
            LearnedCostModel.loads(json.dumps(body))
        assert not isinstance(excinfo.value, StaleModelError)

    def test_explicit_schema_override(self, trained):
        forged = _forge(trained, schema="other-simulator")
        loaded = LearnedCostModel.loads(forged, schema="other-simulator")
        assert loaded.schema == "other-simulator"


class TestSessionFallback:
    """Satellite: a corrupt/stale artifact falls back to exhaustive
    exploration with a counter, never crashes the run."""

    def _run(self, learned, metrics=None):
        session = AstraSession(
            BUILDERS["scrnn"](TINY), DEVICES["P100"], features="FK",
            seed=0, learned=learned, metrics=metrics,
        )
        try:
            return session.optimize(max_minibatches=400)
        finally:
            session.close()

    def test_corrupt_artifact_counted_fallback(self, trained):
        metrics = MetricsRegistry()
        plain = self._run(None)
        report = self._run(trained.dumps()[:-40], metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["learn.artifact_rejected"]["value"] == 1
        assert "learn.artifact_stale" not in snapshot
        learned = report.astra.fast_path["learned"]
        assert learned["rejected"]
        assert report.best_time_us == plain.best_time_us
        assert report.astra.assignment == plain.astra.assignment

    def test_stale_artifact_counted_separately(self, trained):
        metrics = MetricsRegistry()
        report = self._run(_forge(trained, schema="simulator-v999"),
                           metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["learn.artifact_stale"]["value"] == 1
        assert snapshot["learn.artifact_rejected"]["value"] == 1
        assert "does not match" in report.astra.fast_path["learned"]["rejected"]


class TestStoreArtifacts:
    """Satellite: model artifacts live beside store segments with the
    same lifecycle -- verified on put, evicted when stale, quarantined
    when corrupt (see serve/store.py)."""

    def test_put_and_load_roundtrip(self, trained, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.put_model(trained)
        text = store.load_model()
        assert text is not None
        assert LearnedCostModel.loads(text).fingerprint == trained.fingerprint
        assert store.models() == ["cost-model"]
        assert store.stats()["models"] == 1

    def test_put_verifies_before_accepting(self, trained, tmp_path):
        store = ProfileStore(str(tmp_path))
        with pytest.raises(StaleModelError):
            store.put_model(_forge(trained, schema="simulator-v999"))
        with pytest.raises(ModelArtifactError):
            store.put_model(trained.dumps()[:-40])
        assert store.models() == []

    def test_stale_on_disk_is_evicted(self, trained, tmp_path):
        store = ProfileStore(str(tmp_path))
        path = store.put_model(trained)
        with open(path, "w") as fh:
            fh.write(_forge(trained, schema="simulator-v999"))
        assert store.load_model() is None
        assert store.evicted_models == 1
        assert store.models() == []
        assert store.quarantined() == []

    def test_corrupt_on_disk_is_quarantined(self, trained, tmp_path):
        store = ProfileStore(str(tmp_path))
        path = store.put_model(trained)
        with open(path, "w") as fh:
            fh.write(trained.dumps()[:-40])
        assert store.load_model() is None
        assert store.models() == []
        assert any("cost-model" in name for name in store.quarantined())

    def test_evict_stale_sweeps_models(self, trained, tmp_path):
        store = ProfileStore(str(tmp_path))
        path = store.put_model(trained)
        with open(path, "w") as fh:
            fh.write(_forge(trained, schema="simulator-v999"))
        store.evict_stale()
        assert store.models() == []
        assert store.stats()["evicted_models"] == 1

    def test_malformed_names_refused(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        for name in ("", "../escape", ".hidden", "a/b"):
            with pytest.raises(ValueError):
                store.model_path(name)

    def test_session_learned_store_binding(self, trained, tmp_path):
        """``learned="store"`` resolves the store's published artifact;
        an empty store counts a miss and runs exhaustively."""
        metrics = MetricsRegistry()
        session = AstraSession(
            BUILDERS["scrnn"](TINY), DEVICES["P100"], features="FK",
            seed=0, store=str(tmp_path), learned="store", metrics=metrics,
        )
        session.close()
        assert metrics.snapshot()["learn.artifact_missing"]["value"] == 1

        ProfileStore(str(tmp_path)).put_model(trained)
        session = AstraSession(
            BUILDERS["scrnn"](TINY), DEVICES["P100"], features="FK",
            seed=0, store=str(tmp_path), learned="store",
        )
        try:
            report = session.optimize(max_minibatches=400)
        finally:
            session.close()
        summary = report.astra.fast_path["learned"]
        assert summary["fingerprint"] == trained.fingerprint
        assert summary["choices_pruned"] > 0
