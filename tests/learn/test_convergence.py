"""Acceptance: learned top-k exploration is indistinguishable from
exhaustive exploration in its answer -- identical winning assignment and
final epoch time on both bundled RNN models and both GPU generations --
while measuring at most half the configurations, with the what-if
cross-check holding on every critical kernel, under serial, parallel
and fault-injected execution (see docs/learning.md)."""

import pytest

from repro.core.session import AstraSession
from repro.faults import FAULT_SLOWDOWN, FaultPlan, FaultSpec
from repro.gpu import DEVICES
from repro.obs.metrics import MetricsRegistry
from repro.perf import FastPath
from repro.perf.bench import (
    LEARNED_CONFIGS_TARGET,
    LEARNED_WHATIF_GATE,
    bench_model,
    render_bench,
)

from .conftest import BUILDERS, TINY

EXHAUSTIVE = FastPath(cache=True, prune=False)


def _optimize(model, device, *, fast=None, learned=None, workers=None,
              faults=None, metrics=None):
    session = AstraSession(
        model, device=device, features="FK", seed=0, fast=fast,
        learned=learned, workers=workers, faults=faults, metrics=metrics,
    )
    try:
        return session.optimize(max_minibatches=400)
    finally:
        session.close()


@pytest.mark.parametrize("device_name", ["P100", "V100"])
@pytest.mark.parametrize("model_name", sorted(BUILDERS))
def test_learned_topk_equals_exhaustive(trained, model_name, device_name):
    model = BUILDERS[model_name](TINY)
    device = DEVICES[device_name]
    exhaustive = _optimize(model, device, fast=EXHAUSTIVE)
    learned = _optimize(model, device, learned=trained)

    assert learned.best_time_us == exhaustive.best_time_us, (
        f"{model_name}/{device_name}: final epoch time diverged"
    )
    assert learned.astra.assignment == exhaustive.astra.assignment, (
        f"{model_name}/{device_name}: winning configuration diverged"
    )
    summary = learned.astra.fast_path["learned"]
    assert summary["skips"] == {}
    # the model actually pruned (non-vacuous), and deeply enough
    assert summary["choices_pruned"] > 0
    assert learned.configs_explored <= (
        LEARNED_CONFIGS_TARGET * exhaustive.configs_explored
    )
    # the Daydream-style cross-check ran and held on the critical kernels
    whatif = summary["whatif"]
    assert whatif["ok"]
    assert whatif["checked"] > 0
    assert whatif["max_rel_error"] <= LEARNED_WHATIF_GATE
    for verdict in whatif["strategies"].values():
        assert verdict["ok"] and verdict["checks"] > 0


def test_learned_report_carries_model_identity(trained):
    report = _optimize(BUILDERS["scrnn"](TINY), DEVICES["P100"],
                       learned=trained)
    summary = report.astra.fast_path["learned"]
    assert summary["fingerprint"] == trained.fingerprint
    assert summary["records"] == trained.records
    assert summary["vars_ranked"] > 0


def test_learned_prunes_on_top_of_fk(trained):
    """The learned ranker composes with (cuts deeper than) the FK
    pre-ranker: strictly fewer measured configurations than the fast
    path alone."""
    model = BUILDERS["milstm"](TINY)
    device = DEVICES["V100"]
    fast = _optimize(model, device, fast=FastPath(cache=True, prune=True))
    learned = _optimize(model, device, learned=trained)
    assert learned.configs_explored <= fast.configs_explored
    assert learned.best_time_us == fast.best_time_us


def test_learned_with_workers_matches_serial(trained):
    model = BUILDERS["scrnn"](TINY)
    device = DEVICES["P100"]
    serial = _optimize(model, device, learned=trained)
    parallel = _optimize(model, device, learned=trained, workers=2)
    assert parallel.best_time_us == serial.best_time_us
    assert parallel.astra.assignment == serial.astra.assignment
    assert parallel.configs_explored == serial.configs_explored
    assert (
        parallel.astra.fast_path["learned"]["choices_pruned"]
        == serial.astra.fast_path["learned"]["choices_pruned"]
    )


def test_fault_injection_disarms_the_model(trained):
    """Under an armed injector the corpus no longer describes the device,
    so the ranker must decline -- and the run must land exactly where a
    faulted run without any model lands."""
    faults = FaultPlan(
        specs=(FaultSpec(FAULT_SLOWDOWN, rate=0.3, factor=2.0),), seed=3
    )
    model = BUILDERS["scrnn"](TINY)
    device = DEVICES["P100"]
    metrics = MetricsRegistry()
    plain = _optimize(model, device, faults=faults)
    learned = _optimize(model, device, faults=faults, learned=trained,
                        metrics=metrics)
    summary = learned.astra.fast_path["learned"]
    assert summary["choices_pruned"] == 0
    assert summary["skips"].get("inexact", 0) > 0
    assert metrics.snapshot()["learn.skipped_inexact"]["value"] > 0
    assert learned.best_time_us == plain.best_time_us
    assert learned.astra.assignment == plain.astra.assignment


class TestLearnedBenchLeg:
    """The ``repro bench --learned`` acceptance gates, pinned."""

    @pytest.mark.parametrize("model_name", sorted(BUILDERS))
    def test_bench_gates_pass(self, trained, tmp_path, model_name):
        artifact = tmp_path / "model.json"
        artifact.write_text(trained.dumps())
        doc = bench_model(
            model_name, batch=4, seq_len=3, seed=0, budget=400,
            quick=True, workers=0, learned=str(artifact),
        )
        assert doc["ok"], doc["failures"]
        assert doc["version"] == 4
        variant = doc["variants"][doc["primary_variant"]]
        assert variant["learned_winner_match"]
        assert variant["learned_configs_fraction"] <= LEARNED_CONFIGS_TARGET
        assert variant["learned_choices_pruned"] > 0
        assert variant["learned_whatif_checked"] > 0
        assert variant["learned_whatif_max_rel_error"] <= LEARNED_WHATIF_GATE
        assert variant["learned_model_fingerprint"] == trained.fingerprint
        rendered = render_bench(doc)
        assert "learned" in rendered and "gate:" in rendered

    def test_rejected_artifact_fails_the_leg(self, trained, tmp_path):
        artifact = tmp_path / "model.json"
        artifact.write_text(trained.dumps()[:-40])  # truncated: corrupt
        doc = bench_model(
            "scrnn", batch=4, seq_len=3, seed=0, budget=400,
            quick=True, workers=0, learned=str(artifact),
        )
        assert not doc["ok"]
        assert any("artifact rejected" in msg for msg in doc["failures"])
        assert any("hit rate is zero" in msg for msg in doc["failures"])
