"""Tests for the simulated GEMM kernel libraries (Table 1 behaviour)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import GEMM_LIBRARIES, P100, V100, best_library
from repro.gpu.libraries import CUBLAS, OAI_1, OAI_2


class TestDurations:
    def test_all_positive(self):
        for kernel in GEMM_LIBRARIES.values():
            assert kernel.duration_us(64, 64, 64, P100) > 0

    def test_monotone_in_flops_across_wave_boundaries(self):
        # N large enough that the bigger shape needs strictly more waves
        for kernel in GEMM_LIBRARIES.values():
            small = kernel.duration_us(64, 512, 512, P100)
            big = kernel.duration_us(64, 512, 32768, P100)
            assert big > small

    def test_same_wave_count_same_latency(self):
        """More tiles within one wave cost nothing extra -- the headroom
        fusion exploits (section 3.2).  Shapes chosen so the library picks
        the same tile variant and a single wave for both."""
        from repro.gpu.libraries import OAI_1

        p_small = OAI_1.plan(8, 512, 512, P100)
        p_big = OAI_1.plan(8, 512, 2048, P100)
        assert p_small.variant == p_big.variant
        assert p_big.duration_us == pytest.approx(p_small.duration_us)

    def test_startup_dominates_tiny_gemms(self):
        tiny = CUBLAS.duration_us(1, 4, 4, P100)
        assert tiny >= CUBLAS.startup_us

    def test_deterministic(self):
        a = OAI_1.duration_us(64, 1024, 4096, P100)
        b = OAI_1.duration_us(64, 1024, 4096, P100)
        assert a == b


class TestTable1Structure:
    """The paper's Table 1: the best library depends on the shape."""

    def test_row1_oai1_wins(self):
        # 64x1024x4096: OAI_1 beats cuBLAS, OAI_2 is catastrophic
        t = {lib: k.duration_us(64, 1024, 4096, P100) for lib, k in GEMM_LIBRARIES.items()}
        assert t["oai_1"] < t["cublas"]
        assert t["oai_2"] > 2.5 * t["cublas"]

    def test_row2_cublas_wins(self):
        # 64x4096x1024: cuBLAS wins, OAI_2 close, OAI_1 behind
        t = {lib: k.duration_us(64, 4096, 1024, P100) for lib, k in GEMM_LIBRARIES.items()}
        assert t["cublas"] < t["oai_1"]
        assert t["cublas"] < t["oai_2"]
        assert t["oai_2"] < t["oai_1"] * 1.05

    def test_winner_varies_with_shape(self):
        winners = {
            best_library(m, k, n, P100)
            for (m, k, n) in [(64, 1024, 4096), (64, 4096, 1024), (8, 650, 2600)]
        }
        assert len(winners) >= 2

    def test_hard_to_predict_statically(self):
        """Swapping K and N flips the winner -- the paper's static-choice
        impossibility argument."""
        w1 = best_library(64, 1024, 4096, P100)
        w2 = best_library(64, 4096, 1024, P100)
        assert w1 != w2


class TestPlans:
    def test_plan_reports_chosen_variant(self):
        plan = CUBLAS.plan(256, 1024, 1024, P100)
        assert plan.variant in CUBLAS.variants
        assert plan.tiles >= 1
        assert plan.split_k >= 1

    def test_parallelism_capped_by_device(self):
        assert CUBLAS.max_parallel_blocks(10000, 10000, P100) == P100.sm_slots
        assert CUBLAS.max_parallel_blocks(8, 64, P100, k=64) < P100.sm_slots

    def test_split_k_only_when_supported(self):
        plan = OAI_2.plan(8, 8192, 64, P100)
        assert plan.split_k == 1  # OAI_2 has max_split_k=1

    def test_wave_quantization_cliff(self):
        """Crossing a wave boundary costs a full extra wave (section 3.1)."""
        slots = P100.sm_slots
        tile_n = OAI_2.variants[0].tile_n
        n_full = slots * tile_n  # exactly one wave of 64-row tiles
        just_under = OAI_2.duration_us(64, 2048, n_full, P100)
        just_over = OAI_2.duration_us(64, 2048, n_full + tile_n, P100)
        assert just_over > just_under * 1.5


class TestDeviceSensitivity:
    def test_v100_faster_than_p100(self):
        for kernel in GEMM_LIBRARIES.values():
            assert kernel.duration_us(512, 1024, 1024, V100) < kernel.duration_us(
                512, 1024, 1024, P100
            )

    def test_efficiency_ramp(self):
        assert OAI_1.efficiency(64, OAI_1.variants[0]) < OAI_1.efficiency(
            1024, OAI_1.variants[0]
        )

    def test_efficiency_decay(self):
        assert OAI_1.efficiency(4096, OAI_1.variants[0]) < OAI_1.efficiency(
            1500, OAI_1.variants[0]
        )


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(1, 512),
    k=st.integers(1, 4096),
    n=st.integers(1, 4096),
)
def test_property_durations_finite_and_positive(m, k, n):
    for kernel in GEMM_LIBRARIES.values():
        d = kernel.duration_us(m, k, n, P100)
        assert d > 0 and d < 1e7


@settings(max_examples=40, deadline=None)
@given(m=st.integers(1, 256), k=st.integers(16, 2048), n=st.integers(16, 2048))
def test_property_fusion_never_worse_than_sum_of_parts_along_n(m, k, n):
    """Fusing two identical GEMMs along N never exceeds running them
    back-to-back (ignoring launch overhead, which only helps fusion)."""
    for kernel in GEMM_LIBRARIES.values():
        fused = kernel.duration_us(m, k, 2 * n, P100)
        two = 2 * kernel.duration_us(m, k, n, P100)
        assert fused <= two * 1.01
