"""Tests for the cudaEvent analog."""

from repro.gpu import EventId, EventNamespace, ProfileRange


class TestEventNamespace:
    def test_unique_ids(self):
        ns = EventNamespace()
        events = [ns.new_event() for _ in range(10)]
        assert len({e.index for e in events}) == 10

    def test_independent_namespaces(self):
        a, b = EventNamespace(), EventNamespace()
        assert a.new_event().index == b.new_event().index == 0

    def test_labels(self):
        ns = EventNamespace()
        ev = ns.new_event("epoch3")
        assert "epoch3" in str(ev)

    def test_hashable(self):
        ns = EventNamespace()
        e1 = ns.new_event("x")
        assert e1 in {e1}
        assert EventId(0, "x") == EventId(0, "x")


class TestProfileRange:
    def test_carries_mangled_key(self):
        ns = EventNamespace()
        r = ProfileRange(key=("alloc", 0, "gemm", 3), start=ns.new_event(), end=ns.new_event())
        assert r.key[0] == "alloc"
        assert r.start.index != r.end.index
