"""Tests for the arena allocator and contiguity plans."""

import pytest

from repro.gpu import AllocationPlan, ContiguityGroup
from repro.ir import Tracer


@pytest.fixture()
def weights_graph():
    tr = Tracer("weights")
    w1 = tr.param((4, 8), label="w1")
    w2 = tr.param((4, 8), label="w2")
    w3 = tr.param((4, 8), label="w3")
    x = tr.input((2, 4), label="x")
    tr.output(tr.matmul(x, tr.concat([w1, w2, w3], axis=1)))
    return tr.graph, (w1.node.node_id, w2.node.node_id, w3.node.node_id)


class TestContiguityGroup:
    def test_requires_two_members(self):
        with pytest.raises(ValueError):
            ContiguityGroup(node_ids=(1,))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ContiguityGroup(node_ids=(1, 1))


class TestAllocationPlan:
    def test_grouped_tensors_contiguous(self, weights_graph):
        graph, ids = weights_graph
        plan = AllocationPlan(graph, [ContiguityGroup(ids, "gates")])
        assert plan.is_contiguous(ids)

    def test_group_order_matters(self, weights_graph):
        graph, (a, b, c) = weights_graph
        plan = AllocationPlan(graph, [ContiguityGroup((a, b, c), "gates")])
        assert not plan.is_contiguous((b, a, c))

    def test_default_plan_not_contiguous_with_alignment_gaps(self, weights_graph):
        graph, ids = weights_graph
        # tensor size 4*8*4 = 128 bytes < 256 alignment, so ungrouped
        # tensors get padded apart
        plan = AllocationPlan(graph)
        assert not plan.is_contiguous(ids)

    def test_offsets_aligned(self, weights_graph):
        graph, ids = weights_graph
        plan = AllocationPlan(graph, [ContiguityGroup(ids, "g")], alignment=256)
        for node in graph.nodes:
            if node.node_id == ids[1] or node.node_id == ids[2]:
                continue  # interior of a group is deliberately unaligned
            assert plan.offset_of(node.node_id) % 256 == 0

    def test_arena_covers_all_tensors(self, weights_graph):
        graph, _ids = weights_graph
        plan = AllocationPlan(graph)
        total = sum(n.spec.size_bytes for n in graph.nodes)
        assert plan.arena_size_bytes >= total

    def test_conflicting_groups_rejected(self, weights_graph):
        graph, (a, b, c) = weights_graph
        with pytest.raises(ValueError):
            AllocationPlan(
                graph,
                [ContiguityGroup((a, b), "x"), ContiguityGroup((b, c), "y")],
            )

    def test_unknown_node_rejected(self, weights_graph):
        graph, _ = weights_graph
        with pytest.raises(ValueError):
            AllocationPlan(graph, [ContiguityGroup((900, 901), "bad")])

    def test_gather_bytes(self, weights_graph):
        graph, ids = weights_graph
        plan = AllocationPlan(graph)
        assert plan.gather_bytes(ids) == 3 * 4 * 8 * 4

    def test_strategy_key_distinguishes_plans(self, weights_graph):
        graph, (a, b, c) = weights_graph
        p1 = AllocationPlan(graph, [ContiguityGroup((a, b, c), "g")])
        p2 = AllocationPlan(graph, [ContiguityGroup((a, c, b), "g")])
        assert p1.strategy_key() != p2.strategy_key()

    def test_singleton_always_contiguous(self, weights_graph):
        graph, (a, *_r) = weights_graph
        plan = AllocationPlan(graph)
        assert plan.is_contiguous((a,))
        assert plan.is_contiguous(())
