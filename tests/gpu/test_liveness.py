"""Tests for liveness analysis and arena reuse."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.liveness import (
    LiveInterval,
    activation_peak_bytes,
    live_intervals,
    plan_with_reuse,
)
from repro.ir import Tracer


def chain_graph(length=5):
    tr = Tracer("chain")
    x = tr.input((64, 64))
    value = x
    for _ in range(length):
        value = tr.sigmoid(value)
    tr.output(tr.reduce_sum(value))
    return tr.graph


class TestIntervals:
    def test_chain_intervals_nested(self):
        graph = chain_graph(3)
        intervals = {iv.node_id: iv for iv in live_intervals(graph)}
        # each sigmoid dies at its consumer
        for node in graph.compute_nodes():
            consumers = graph.consumers(node.node_id)
            if consumers and node.node_id not in graph.outputs:
                assert intervals[node.node_id].end == max(consumers)

    def test_leaves_live_throughout(self):
        graph = chain_graph(3)
        intervals = {iv.node_id: iv for iv in live_intervals(graph)}
        for leaf in graph.inputs() + graph.params():
            assert intervals[leaf.node_id].start == 0
            assert intervals[leaf.node_id].end == len(graph) - 1

    def test_outputs_kept(self):
        graph = chain_graph(2)
        intervals = {iv.node_id: iv for iv in live_intervals(graph)}
        for out in graph.outputs:
            assert intervals[out].end == len(graph) - 1

    def test_overlap_predicate(self):
        a = LiveInterval(0, 0, 5, 10)
        b = LiveInterval(1, 5, 9, 10)
        c = LiveInterval(2, 6, 9, 10)
        assert a.overlaps(b) and not a.overlaps(c)


class TestReusePlan:
    def test_chain_reuses_heavily(self):
        """A long elementwise chain needs O(1) live tensors, so reuse
        shrinks the arena dramatically."""
        plan = plan_with_reuse(chain_graph(20))
        assert plan.reuse_factor > 4.0

    def test_no_overlapping_tensors_share_space(self):
        graph = chain_graph(8)
        plan = plan_with_reuse(graph)
        intervals = {iv.node_id: iv for iv in live_intervals(graph)}
        items = sorted(plan.offsets.items())
        for i, (nid_a, off_a) in enumerate(items):
            size_a = max(1, graph.node(nid_a).spec.size_bytes)
            for nid_b, off_b in items[i + 1:]:
                size_b = max(1, graph.node(nid_b).spec.size_bytes)
                if intervals[nid_a].overlaps(intervals[nid_b]):
                    disjoint = (
                        off_a + size_a <= off_b or off_b + size_b <= off_a
                    )
                    assert disjoint, f"%{nid_a} and %{nid_b} overlap in time AND space"

    def test_peak_at_most_naive(self):
        plan = plan_with_reuse(chain_graph(6))
        assert plan.peak_bytes <= plan.naive_bytes

    def test_deterministic(self):
        g = chain_graph(6)
        assert plan_with_reuse(g).offsets == plan_with_reuse(g).offsets


class TestRecomputationEffect:
    def test_recompute_shrinks_peak(self, tiny_sublstm):
        """Marking forward activations as recomputed shortens their live
        intervals and lowers the training peak (section 3.4)."""
        graph = tiny_sublstm.graph
        forward_acts = {
            n.node_id
            for n in graph.compute_nodes()
            if n.pass_tag == "forward"
        }
        keep_all = activation_peak_bytes(graph, recomputed=set())
        recompute_all = activation_peak_bytes(graph, recomputed=forward_acts)
        assert recompute_all < keep_all

    def test_training_peak_above_inference(self, tiny_sublstm):
        graph = tiny_sublstm.graph
        training_peak = activation_peak_bytes(graph)
        plain = plan_with_reuse(graph).peak_bytes
        assert training_peak >= plain


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_reuse_never_corrupts(seed):
    """Fuzz: overlapping-in-time tensors never share space."""
    from tests.integration.fuzz_utils import random_program

    tr, _loss = random_program(seed, size=8)
    graph = tr.graph
    plan = plan_with_reuse(graph)
    intervals = {iv.node_id: iv for iv in live_intervals(graph)}
    items = sorted(plan.offsets.items())
    for i, (nid_a, off_a) in enumerate(items):
        size_a = max(1, graph.node(nid_a).spec.size_bytes)
        for nid_b, off_b in items[i + 1: i + 12]:  # local window keeps it fast
            size_b = max(1, graph.node(nid_b).spec.size_bytes)
            if intervals[nid_a].overlaps(intervals[nid_b]):
                assert off_a + size_a <= off_b or off_b + size_b <= off_a
