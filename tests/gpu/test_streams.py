"""Tests for the discrete-event stream engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import (
    CLOCK_AUTOBOOST,
    EventNamespace,
    GemmLaunch,
    HostComputeItem,
    HostSyncItem,
    LaunchItem,
    P100,
    RecordEventItem,
    StreamSimulator,
)
from repro.gpu.kernels import ElementwiseLaunch


def gemm(m=256, k=1024, n=1024, lib="cublas"):
    return GemmLaunch(m, k, n, lib)


def run(items, device=P100, seed=0):
    return StreamSimulator(device, seed=seed).run(items)


class TestSequentialExecution:
    def test_single_kernel_total(self):
        res = run([LaunchItem(gemm(), 0), HostSyncItem()])
        k = gemm().duration_us(P100)
        assert res.total_time_us == pytest.approx(
            P100.launch_overhead_us + k + P100.barrier_overhead_us, rel=1e-6
        )

    def test_fifo_order_within_stream(self):
        res = run([LaunchItem(gemm(), 0), LaunchItem(gemm(), 0), HostSyncItem()])
        first, second = res.records
        assert second.start_time >= first.end_time

    def test_launch_overhead_serializes_dispatch(self):
        n = 20
        tiny = ElementwiseLaunch(num_elements=16)
        res = run([LaunchItem(tiny, 0) for _ in range(n)] + [HostSyncItem()])
        assert res.cpu_time_us >= n * P100.launch_overhead_us

    def test_empty_schedule(self):
        res = run([HostSyncItem()])
        assert res.records == []

    def test_host_compute_stalls_dispatch(self):
        res_without = run([LaunchItem(gemm(), 0), HostSyncItem()])
        res_with = run(
            [HostComputeItem(500.0), LaunchItem(gemm(), 0), HostSyncItem()]
        )
        assert res_with.total_time_us >= res_without.total_time_us + 499


class TestStreamsOverlap:
    def test_two_streams_faster_than_one(self):
        # kernels that underfill the device individually overlap on streams
        seq = run([LaunchItem(gemm(), 0), LaunchItem(gemm(), 0), HostSyncItem()])
        par = run([LaunchItem(gemm(), 0), LaunchItem(gemm(), 1), HostSyncItem()])
        assert par.total_time_us < seq.total_time_us * 0.75

    def test_section_3_2_parallel_beats_fused_beats_sequential(self):
        """The paper's 172us-vs-211us observation: two 256-GEMMs on two
        streams beat the fused 512-GEMM, which beats sequential."""
        seq = run([LaunchItem(gemm(256)), LaunchItem(gemm(256)), HostSyncItem()])
        par = run([LaunchItem(gemm(256), 0), LaunchItem(gemm(256), 1), HostSyncItem()])
        fused = run([LaunchItem(gemm(512)), HostSyncItem()])
        assert par.total_time_us < fused.total_time_us < seq.total_time_us

    def test_sharing_slows_concurrent_kernels(self):
        alone = run([LaunchItem(gemm(), 0), HostSyncItem()])
        contended = run(
            [LaunchItem(gemm(), 0), LaunchItem(gemm(), 1), HostSyncItem()]
        )
        # both finish later than a single kernel alone would
        assert contended.total_time_us > alone.total_time_us

    def test_saturating_kernels_get_no_overlap_benefit(self):
        big = GemmLaunch(4096, 1024, 4096, "cublas")
        seq = run([LaunchItem(big, 0), LaunchItem(big, 0), HostSyncItem()])
        par = run([LaunchItem(big, 0), LaunchItem(big, 1), HostSyncItem()])
        assert par.total_time_us == pytest.approx(seq.total_time_us, rel=0.05)


class TestEventsAndDependencies:
    def test_cross_stream_wait(self):
        ns = EventNamespace()
        ev = ns.new_event()
        res = run([
            LaunchItem(gemm(), 0, record=ev),
            LaunchItem(gemm(), 1, waits=(ev,)),
            HostSyncItem(),
        ])
        first, second = res.records
        assert second.start_time >= first.end_time

    def test_elapsed_time_query(self):
        ns = EventNamespace()
        e0, e1 = ns.new_event(), ns.new_event()
        res = run([
            RecordEventItem(0, e0),
            LaunchItem(gemm(), 0, record=e1),
            HostSyncItem(e1),
        ])
        elapsed = res.elapsed_us(e0, e1)
        assert elapsed >= gemm().duration_us(P100) * 0.99

    def test_missing_event_raises(self):
        ns = EventNamespace()
        res = run([HostSyncItem()])
        with pytest.raises(KeyError):
            res.elapsed_us(ns.new_event(), ns.new_event())

    def test_deadlock_detected(self):
        ns = EventNamespace()
        never = ns.new_event()
        with pytest.raises(RuntimeError):
            run([LaunchItem(gemm(), 1, waits=(never,)), HostSyncItem()])

    def test_host_sync_on_event(self):
        ns = EventNamespace()
        ev = ns.new_event()
        res = run([
            LaunchItem(gemm(), 0, record=ev),
            HostSyncItem(ev),
            LaunchItem(gemm(), 0),
            HostSyncItem(),
        ])
        assert res.records[1].issue_time >= res.records[0].end_time

    def test_profiling_overhead_accounted(self):
        ns = EventNamespace()
        res = run([
            LaunchItem(gemm(), 0, record=ns.new_event()),
            RecordEventItem(0, ns.new_event()),
            HostSyncItem(),
        ])
        assert res.profiling_overhead_us == pytest.approx(2 * P100.event_overhead_us)


class TestDeterminismAndJitter:
    def test_base_clock_exactly_deterministic(self):
        items = [LaunchItem(gemm(), 0), LaunchItem(gemm(128), 1), HostSyncItem()]
        times = {run(items, seed=s).total_time_us for s in range(5)}
        assert len(times) == 1

    def test_autoboost_varies_across_runs(self):
        dev = P100.with_clock(CLOCK_AUTOBOOST)
        sim = StreamSimulator(dev, seed=3)
        items = [LaunchItem(gemm(), 0), HostSyncItem()]
        t1 = sim.run(items).total_time_us
        t2 = sim.run(items).total_time_us
        assert t1 != t2

    def test_autoboost_mean_faster_than_base(self):
        """Autoboost raises the clock on average (the paper found no
        *measurable* benefit but the hardware does boost)."""
        dev = P100.with_clock(CLOCK_AUTOBOOST)
        sim = StreamSimulator(dev, seed=0)
        items = [LaunchItem(gemm(), 0), HostSyncItem()]
        base = run(items).total_time_us
        boosted = [sim.run(items).total_time_us for _ in range(50)]
        assert min(boosted) != max(boosted)

    def test_invalid_clock_mode_rejected(self):
        with pytest.raises(ValueError):
            P100.with_clock("overdrive")


class TestFastPathEquivalence:
    def test_sequential_fast_path_matches_concurrent_engine(self):
        """The O(n) single-stream fast path must agree with the full DES."""
        ns = EventNamespace()
        ev = ns.new_event()
        items = [
            LaunchItem(gemm(64, 512, 512), 0),
            LaunchItem(ElementwiseLaunch(num_elements=4096), 0, record=ev),
            LaunchItem(gemm(32, 256, 1024), 0),
            HostSyncItem(ev),
            LaunchItem(gemm(16, 128, 128), 0),
            HostSyncItem(),
        ]
        sim = StreamSimulator(P100)
        fast = sim._run_sequential(items)
        slow = sim._run_concurrent(items)
        assert fast.total_time_us == pytest.approx(slow.total_time_us, rel=1e-9)
        for fr, sr in zip(fast.records, slow.records):
            assert fr.start_time == pytest.approx(sr.start_time, rel=1e-9)
            assert fr.end_time == pytest.approx(sr.end_time, rel=1e-9)

    def test_fast_path_taken_for_single_stream(self):
        items = [LaunchItem(gemm(), 0), HostSyncItem()]
        assert StreamSimulator._is_sequential(items)

    def test_fast_path_rejected_for_two_streams(self):
        items = [LaunchItem(gemm(), 0), LaunchItem(gemm(), 1), HostSyncItem()]
        assert not StreamSimulator._is_sequential(items)


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(8, 256), min_size=1, max_size=8),
    streams=st.lists(st.integers(0, 2), min_size=1, max_size=8),
)
def test_property_more_streams_never_slower(sizes, streams):
    """Moving independent kernels onto streams never hurts end-to-end time
    (with no dependencies and free synchronization)."""
    n = min(len(sizes), len(streams))
    kernels = [gemm(sizes[i], 256, 256) for i in range(n)]
    seq = run([LaunchItem(k, 0) for k in kernels] + [HostSyncItem()])
    par = run(
        [LaunchItem(k, s) for k, s in zip(kernels, streams[:n])] + [HostSyncItem()]
    )
    assert par.total_time_us <= seq.total_time_us * 1.01


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(1, 10))
def test_property_work_conservation(seed, n):
    """Total busy time across records equals the sum of standalone durations
    in sequential mode (nothing is lost or double-counted)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    kernels = [gemm(int(rng.integers(8, 128)), 256, 256) for _ in range(n)]
    res = run([LaunchItem(k, 0) for k in kernels] + [HostSyncItem()])
    assert res.kernel_time_us() == pytest.approx(
        sum(k.duration_us(P100) for k in kernels), rel=1e-9
    )


class TestRecordFields:
    """Every record must carry stream id and kernel kind uniformly -- the
    Chrome-trace exporter relies on never falling back to defaults."""

    def test_every_record_carries_stream_id_and_kind(self):
        ns = EventNamespace()
        ev = ns.new_event("x")
        items = [
            LaunchItem(gemm(), 0, record=ev),
            LaunchItem(ElementwiseLaunch(num_elements=4096), 1, waits=(ev,)),
            LaunchItem(gemm(lib="oai_1"), 1),
            HostSyncItem(),
        ]
        res = run(items)
        assert len(res.records) == 3
        for record in res.records:
            assert record.stream_id == record.stream
            assert isinstance(record.stream_id, int) and record.stream_id >= 0
            assert record.kind == record.kernel.kind
            assert record.kind in ("gemm", "elementwise", "copy", "compound",
                                   "transfer")
        assert [r.kind for r in res.records] == ["gemm", "elementwise", "gemm"]
        assert [r.stream_id for r in res.records] == [0, 1, 1]

    def test_stream_ids_sorted_and_complete(self):
        ns = EventNamespace()
        ev = ns.new_event("x")
        items = [
            LaunchItem(gemm(), 2, record=ev),
            LaunchItem(gemm(), 0, waits=(ev,)),
            HostSyncItem(),
        ]
        res = run(items)
        assert res.stream_ids() == [0, 2]
        assert [r.stream_id for r in res.records_for_stream(2)] == [2]
        assert res.records_for_stream(1) == []
