"""Tests for kernel launch descriptors."""

import pytest

from repro.gpu import (
    CompoundLaunch,
    CopyLaunch,
    ElementwiseLaunch,
    GemmLaunch,
    HostTransfer,
    P100,
)


class TestGemmLaunch:
    def test_duration_matches_library(self):
        from repro.gpu import GEMM_LIBRARIES

        launch = GemmLaunch(64, 512, 512, "oai_1")
        assert launch.duration_us(P100) == GEMM_LIBRARIES["oai_1"].duration_us(
            64, 512, 512, P100
        )

    def test_unknown_library_rejected(self):
        with pytest.raises(ValueError):
            GemmLaunch(8, 8, 8, "magma")

    def test_flops(self):
        assert GemmLaunch(2, 3, 4, "cublas").flops() == 48

    def test_name_describes_shape(self):
        assert "64x512x256" in GemmLaunch(64, 512, 256, "cublas").name


class TestElementwiseLaunch:
    def test_fusion_reduces_total_time(self):
        """One fused launch of k ops beats k separate launches."""
        n = 100_000
        fused = ElementwiseLaunch(num_elements=n, fused_ops=4)
        single = ElementwiseLaunch(num_elements=n, fused_ops=1)
        assert fused.duration_us(P100) < 4 * single.duration_us(P100)

    def test_memory_bound_scaling(self):
        small = ElementwiseLaunch(num_elements=1_000)
        large = ElementwiseLaunch(num_elements=10_000_000)
        assert large.duration_us(P100) > small.duration_us(P100) * 10

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ElementwiseLaunch(num_elements=0)

    def test_parallelism_scales_with_elements(self):
        tiny = ElementwiseLaunch(num_elements=512)
        huge = ElementwiseLaunch(num_elements=10_000_000)
        assert tiny.parallelism(P100) < huge.parallelism(P100)
        assert huge.parallelism(P100) == P100.sm_slots


class TestCopyAndTransfer:
    def test_copy_bandwidth_bound(self):
        mb = CopyLaunch(bytes_moved=1_000_000)
        assert mb.duration_us(P100) == pytest.approx(
            1.0 + 2 * 1_000_000 / P100.mem_bw_bytes_per_us
        )

    def test_transfer_slower_than_device_copy(self):
        assert HostTransfer(1_000_000).duration_us(P100) > CopyLaunch(
            1_000_000
        ).duration_us(P100)

    def test_transfer_uses_copy_engine(self):
        assert HostTransfer(1024).parallelism(P100) == 0

    def test_transfer_direction_validated(self):
        with pytest.raises(ValueError):
            HostTransfer(10, direction="sideways")


class TestCompoundLaunch:
    def test_near_peak_efficiency(self):
        flops = 10**9
        launch = CompoundLaunch(total_flops=flops, efficiency=0.72)
        ideal = flops / P100.peak_flops_per_us
        assert launch.duration_us(P100) == pytest.approx(2.0 + ideal / 0.72)

    def test_compound_beats_many_small_gemms(self):
        """A cuDNN-style compound kernel beats the same flops as 8 small
        launch-bound GEMMs (section 2.4's up-to-6x claim)."""
        small = GemmLaunch(8, 650, 650, "cublas")
        total_flops = 8 * small.flops()
        compound = CompoundLaunch(total_flops=total_flops)
        naive = 8 * (small.duration_us(P100) + P100.launch_overhead_us)
        assert compound.duration_us(P100) < naive / 3
