"""Tests for device specifications and clock modes."""

import pytest

from repro.gpu import CLOCK_AUTOBOOST, CLOCK_BASE, DEVICES, GPUSpec, P100, V100


class TestSpecs:
    def test_p100_matches_paper_setup(self):
        """Section 6.1: 'a single Tesla P100 GPU with a peak compute
        bandwidth of 9 teraflops/sec'."""
        assert P100.name == "P100"
        assert P100.peak_flops_per_us == pytest.approx(9.0e6)  # 9 Tf/s in us

    def test_launch_overhead_in_paper_range(self):
        """Section 2.3: 'a fixed cost of about 5-10 usec to launch a
        kernel'."""
        assert 5.0 <= P100.launch_overhead_us <= 10.0

    def test_sm_slots(self):
        assert P100.sm_slots == P100.num_sms * P100.blocks_per_sm
        assert P100.sm_slots == 56

    def test_v100_newer_generation(self):
        assert V100.peak_flops_per_us > P100.peak_flops_per_us
        assert V100.num_sms > P100.num_sms

    def test_registry(self):
        assert DEVICES["P100"] is P100
        assert DEVICES["V100"] is V100

    def test_frozen(self):
        with pytest.raises(Exception):
            P100.launch_overhead_us = 1.0  # type: ignore[misc]


class TestClockModes:
    def test_default_base_clock(self):
        assert P100.clock_mode == CLOCK_BASE

    def test_with_clock_returns_new_spec(self):
        boosted = P100.with_clock(CLOCK_AUTOBOOST)
        assert boosted.clock_mode == CLOCK_AUTOBOOST
        assert P100.clock_mode == CLOCK_BASE  # original untouched
        assert boosted.num_sms == P100.num_sms

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            P100.with_clock("ludicrous")
