"""Tests for roofline helpers and utilization queries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import run_native
from repro.gpu import GEMM_LIBRARIES, GemmLaunch, P100
from repro.gpu.cost_model import (
    achieved_fraction,
    device_utilization,
    gemm_roofline,
    launch_bound_fraction,
    roofline,
)


class TestRoofline:
    def test_compute_bound_gemm(self):
        r = gemm_roofline(2048, 2048, 2048, P100)
        assert r.is_compute_bound
        assert r.arithmetic_intensity > 100

    def test_memory_bound_elementwise_shape(self):
        r = roofline(flops=1e6, bytes_moved=8e6, device=P100)
        assert not r.is_compute_bound

    def test_bound_is_max(self):
        r = roofline(1e6, 1e6, P100)
        assert r.bound_us == max(r.compute_bound_us, r.memory_bound_us)


class TestAchievedFraction:
    @settings(max_examples=40, deadline=None)
    @given(
        m=st.sampled_from([8, 64, 256, 1024]),
        k=st.sampled_from([64, 650, 2048]),
        n=st.sampled_from([64, 650, 4096]),
        lib=st.sampled_from(sorted(GEMM_LIBRARIES)),
    )
    def test_never_beats_physics(self, m, k, n, lib):
        """No simulated kernel exceeds the device's compute roofline."""
        kernel = GemmLaunch(m, k, n, lib)
        assert achieved_fraction(kernel, P100) <= 1.0 + 1e-9

    def test_large_gemms_reach_decent_utilization(self):
        kernel = GemmLaunch(2048, 2048, 2048, "cublas")
        assert achieved_fraction(kernel, P100) > 0.5

    def test_tiny_gemms_latency_bound(self):
        kernel = GemmLaunch(8, 64, 64, "cublas")
        assert achieved_fraction(kernel, P100) < 0.05

    def test_zero_flop_kernels(self):
        from repro.gpu import CopyLaunch

        assert achieved_fraction(CopyLaunch(1024), P100) == 0.0


class TestScheduleDiagnostics:
    def test_launch_bound_shrinks_with_batch(self, device):
        """The mechanism behind Tables 2-4's decaying speedups."""
        import repro.models.sublstm as SU
        from repro.models import build_sublstm

        fractions = []
        for batch in (8, 256):
            model = build_sublstm(
                SU.DEFAULT_CONFIG.scaled(batch_size=batch, seq_len=3)
            )
            result = run_native(model.graph, device).raw
            fractions.append(launch_bound_fraction(result, device))
        assert fractions[0] > fractions[1]

    def test_device_utilization_bounded(self, tiny_sublstm, device):
        result = run_native(tiny_sublstm.graph, device).raw
        assert 0.0 < device_utilization(result, device) <= 1.0

    def test_astra_raises_utilization(self, small_sublstm, device):
        """The whole point: custom-wiring lifts achieved utilization."""
        from repro import AstraSession
        from repro.runtime import Executor

        native = run_native(small_sublstm.graph, device).raw
        report = AstraSession(small_sublstm, features="FKS", seed=1).optimize()
        tuned = Executor(small_sublstm.graph, device).run(report.astra.best_plan).raw
        assert device_utilization(tuned, device) > device_utilization(native, device)
