"""The serve daemon, tested in-process on an ephemeral port.

Each fixture server binds port 0 so suites can run concurrently; real
optimization jobs use the TINY scrnn shape to stay fast.  Pinned here:
the job submit/status/result round-trip, warm sharing between
consecutive and *concurrent* jobs, every documented 4xx, queue
backpressure (503), and graceful shutdown draining accepted jobs.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.serve import (
    AstraServer,
    JobSpec,
    ProfileStore,
    QueueClosedError,
    QueueFullError,
    ServeClient,
    ServeError,
)
from repro.serve.jobs import JobQueue

TINY_JOB = {"model": "scrnn", "batch": 4, "seq_len": 3, "budget": 400}


@pytest.fixture()
def server(tmp_path):
    srv = AstraServer(str(tmp_path / "store"), port=0).start()
    yield srv
    srv.shutdown(drain=False)


@pytest.fixture()
def client(server):
    return ServeClient(server.url)


class TestJobRoundTrip:
    def test_submit_status_result(self, client):
        job = client.submit(TINY_JOB)
        assert job["status"] == "queued"
        assert job["spec"]["model"] == "scrnn"
        done = client.wait(job["id"])
        assert done["status"] == "done"
        result = done["result"]
        assert result["speedup_over_native"] > 1.0
        assert result["configs_explored"] > 0
        assert result["warm"]["seeded_entries"] == 0
        assert result["best_strategy"]
        assert result["assignment"]
        assert client.jobs()[0]["id"] == job["id"]

    def test_second_job_warm_starts(self, client):
        first = client.run(TINY_JOB)["result"]
        second = client.run(TINY_JOB)["result"]
        assert second["warm"]["seeded_entries"] > 0
        assert second["configs_explored"] == 0
        assert second["assignment"] == first["assignment"]
        assert second["best_time_us"] == first["best_time_us"]
        assert second["job_digest"] == first["job_digest"]

    def test_index_endpoint_round_trip(self, client):
        digest = client.run(TINY_JOB)["result"]["job_digest"]
        entries = client.get_index(digest)
        assert entries and all(isinstance(k, tuple) for k, _v in entries)
        put = client.put_index(digest, entries[:3])
        assert put["accepted"] == 3
        assert client.get_index("ab" * 32) is None

    def test_failed_job_reports_error(self, server, client):
        # an unknown device sneaks past client-side checks only if we
        # bypass JobSpec validation: instead force a runner crash
        server.queue._runner = lambda spec: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        job = client.submit(TINY_JOB)
        done = client.wait(job["id"])
        assert done["status"] == "failed"
        assert "boom" in done["error"]
        with pytest.raises(ServeError):
            client.run(TINY_JOB)


class TestConcurrentJobs:
    def test_concurrent_jobs_share_warm_measurements(self, tmp_path):
        """Two workers, four identical jobs: later jobs must inherit the
        earlier jobs' published measurements through the shared store
        (first-writer-wins), and every job must agree on the winner."""
        srv = AstraServer(
            str(tmp_path / "store"), port=0, job_workers=2
        ).start()
        try:
            client = ServeClient(srv.url)
            jobs = [client.submit(TINY_JOB) for _ in range(4)]
            results = [
                client.wait(j["id"], timeout=600.0) for j in jobs
            ]
            assert all(d["status"] == "done" for d in results)
            answers = {
                (json.dumps(d["result"]["assignment"], sort_keys=True),
                 d["result"]["best_time_us"])
                for d in results
            }
            assert len(answers) == 1
            # at least one job after the first ran warm
            assert any(
                d["result"]["warm"]["seeded_entries"] > 0
                for d in results[1:]
            )
        finally:
            srv.shutdown(drain=False)


class TestMalformedRequests:
    def test_unknown_model_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit({"model": "nope"})
        assert exc.value.status == 400

    def test_unknown_field_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit({"model": "scrnn", "bogus": 1})
        assert exc.value.status == 400

    def test_missing_model_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit({"batch": 4})
        assert exc.value.status == 400

    def test_non_json_body_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 400

    def test_bad_types_400(self, client):
        for bad in (
            {"model": "scrnn", "batch": -1},
            {"model": "scrnn", "batch": "four"},
            {"model": "scrnn", "seed": -2},
            {"model": "scrnn", "workers": 0},
            {"model": "scrnn", "device": "TPU"},
            {"model": "scrnn", "features": "XYZ"},
        ):
            with pytest.raises(ServeError) as exc:
                client.submit(bad)
            assert exc.value.status == 400, bad

    def test_unknown_job_404(self, client):
        with pytest.raises(ServeError) as exc:
            client.status("job-999999")
        assert exc.value.status == 404

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_malformed_digest_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.get_index("NOT-HEX")
        assert exc.value.status == 400


class TestBackpressure:
    def test_full_queue_503(self, tmp_path):
        block = threading.Event()
        release = threading.Event()

        def runner(spec):
            block.set()
            release.wait(timeout=30)
            return {}

        srv = AstraServer(
            str(tmp_path / "store"), port=0, queue_size=2, runner=runner
        ).start()
        try:
            client = ServeClient(srv.url)
            client.submit(TINY_JOB)       # picked up by the worker
            assert block.wait(timeout=10)
            client.submit(TINY_JOB)       # queued
            client.submit(TINY_JOB)       # queued (capacity 2)
            with pytest.raises(ServeError) as exc:
                client.submit(TINY_JOB)   # over capacity
            assert exc.value.status == 503
            assert "full" in exc.value.message
        finally:
            release.set()
            srv.shutdown(drain=False)

    def test_queue_rejects_after_close(self):
        queue = JobQueue(lambda spec: {}, capacity=2, workers=1)
        queue.close(drain=True)
        with pytest.raises(QueueClosedError):
            queue.submit(JobSpec(model="scrnn"))

    def test_queue_full_error_direct(self):
        started = threading.Event()
        block = threading.Event()

        def runner(spec):
            started.set()
            block.wait(timeout=30)
            return {}

        queue = JobQueue(runner, capacity=1, workers=1)
        try:
            queue.submit(JobSpec(model="scrnn"))
            assert started.wait(timeout=10)  # worker holds the first job
            queue.submit(JobSpec(model="scrnn"))
            with pytest.raises(QueueFullError):
                queue.submit(JobSpec(model="scrnn"))
        finally:
            block.set()
            queue.close(drain=True)


class TestShutdown:
    def test_graceful_shutdown_drains_queue(self, tmp_path):
        """Accepted jobs must finish; the daemon then stops answering."""
        srv = AstraServer(str(tmp_path / "store"), port=0).start()
        client = ServeClient(srv.url)
        jobs = [client.submit(TINY_JOB) for _ in range(2)]
        assert client.shutdown() == {"status": "draining"}
        assert srv._shutdown_thread is not None  # registered pre-response
        deadline = time.monotonic() + 600
        while srv._serve_thread.is_alive():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        for job in jobs:
            final = srv.queue.get(job["id"])
            assert final.status == "done"
            assert final.result["speedup_over_native"] > 1.0
        with pytest.raises(OSError):
            ServeClient(srv.url, timeout=2).stats()

    def test_shutdown_then_submit_503(self, tmp_path):
        block = threading.Event()
        srv = AstraServer(
            str(tmp_path / "store"), port=0,
            runner=lambda spec: block.wait(timeout=30) and {},
        ).start()
        try:
            client = ServeClient(srv.url)
            client.submit(TINY_JOB)
            client.shutdown()  # starts draining; worker is blocked
            deadline = time.monotonic() + 10
            while not srv.queue.stats()["closed"]:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            with pytest.raises(ServeError) as exc:
                client.submit(TINY_JOB)
            assert exc.value.status == 503
        finally:
            block.set()
            srv.shutdown(drain=False)


class TestStats:
    def test_stats_surface(self, client, server):
        client.run(TINY_JOB)
        stats = client.stats()
        assert stats["queue"]["jobs"] == {"done": 1}
        assert stats["store"]["jobs"] == 1
        assert stats["store"]["segments"] == 1
        assert stats["store"]["schema"] == ProfileStore(
            server.store.root
        ).schema
        metrics = stats["metrics"]
        assert metrics["serve.jobs.submitted"]["value"] == 1
        assert metrics["serve.jobs.completed"]["value"] == 1
        assert metrics["serve.responses.202"]["value"] == 1
