"""ProfileStore self-healing: checksums, quarantine, malformed segments.

``_read_segment`` is the trust boundary between disk and the fleet's
shared knowledge: anything it cannot verify must be skipped and
quarantined -- never raised on, never merged, never silently deleted.
These tests feed it every malformed shape a crash or flaky disk
produces and pin the quarantine bookkeeping.
"""

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.store import (
    SEG_CORRUPT,
    SEG_LEGACY,
    SEG_OK,
    SEG_STALE,
    STORE_VERSION,
    ProfileStore,
    segment_checksum,
)

DIGEST = "ab" * 32
GOOD = [(("op", "heal", i), float(i + 1)) for i in range(3)]


def seg_path(store, name="seg-99999999999999999999-x.json"):
    path = os.path.join(store._job_dir(DIGEST), name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    return path


def write_raw(store, text, name="seg-99999999999999999999-x.json"):
    path = seg_path(store, name)
    with open(path, "w") as fh:
        fh.write(text)
    return path


class TestMalformedSegments:
    """S3: ``_read_segment`` on hostile inputs -- skip, quarantine, count."""

    @pytest.mark.parametrize("payload,label", [
        ('{"version": 2, "schema": "x", "entr', "truncated-json"),
        ("", "empty-file"),
        ('["not", "a", "segment", "dict"]', "non-dict-payload"),
        ('"just a string"', "scalar-payload"),
        ('{"version": 2, "schema": "x", "entries": 42}', "entries-not-list"),
    ])
    def test_malformed_is_quarantined_never_raised(self, tmp_path, payload,
                                                   label):
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, GOOD)
        bad = write_raw(store, payload)

        index = store.load(DIGEST)
        assert index is not None, f"{label}: survivors were lost"
        assert len(index.snapshot()) == len(GOOD)
        assert store.corrupt_segments == 1
        assert store.quarantined_segments == 1
        assert not os.path.exists(bad)
        (quarantined,) = store.quarantined()
        assert quarantined.startswith(DIGEST)  # evidence kept, attributed

    def test_wrong_schema_segment_beside_valid_is_skipped_not_corrupt(
        self, tmp_path
    ):
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, GOOD)
        # a well-formed, correctly-checksummed segment from another
        # schema: filtered (stale), not quarantined -- it is not damaged
        body = {
            "version": STORE_VERSION, "schema": "some-other-schema",
            "entries": [{"key": ["op"], "value": 1.0}],
        }
        doc = dict(body, sha256=segment_checksum(
            json.loads(json.dumps(body))
        ))
        write_raw(store, json.dumps(doc))

        index = store.load(DIGEST)
        assert len(index.snapshot()) == len(GOOD)
        assert store.corrupt_segments == 0
        assert store.quarantined() == []

    def test_checksumless_current_version_segment_is_corrupt(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        doc = {"version": STORE_VERSION, "schema": store.schema,
               "entries": [{"key": ["op"], "value": 1.0}]}
        write_raw(store, json.dumps(doc))
        assert store.load(DIGEST) is None
        assert store.corrupt_segments == 1

    def test_legacy_prechecksum_segment_is_skipped_quietly(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        doc = {"version": 1, "schema": store.schema,
               "entries": [{"key": ["op"], "value": 1.0}]}
        path = write_raw(store, json.dumps(doc))
        assert store.load(DIGEST) is None  # never merged unverified
        assert store.corrupt_segments == 0  # but not slandered either
        assert os.path.exists(path)


class TestBitFlips:
    def test_every_byte_matters(self, tmp_path):
        """Flip each byte of a committed segment in turn: all detected."""
        store = ProfileStore(str(tmp_path))
        info = store.put(DIGEST, GOOD)
        with open(info.path, "rb") as fh:
            pristine = fh.read()
        # step through the file so the sweep stays fast but covers the
        # header, checksum field, keys, and values alike
        for offset in range(0, len(pristine), 7):
            flipped = bytearray(pristine)
            flipped[offset] ^= 0x01
            if bytes(flipped) == pristine:
                continue
            fresh = ProfileStore(str(tmp_path))
            with open(info.path, "wb") as fh:
                fh.write(bytes(flipped))
            verdict, doc = fresh._classify(info.path)
            assert verdict == SEG_CORRUPT, (
                f"flip at byte {offset} went undetected"
            )
            assert doc is None
        with open(info.path, "wb") as fh:
            fh.write(pristine)
        assert ProfileStore(str(tmp_path))._classify(info.path)[0] == SEG_OK

    def test_flip_is_quarantined_and_counted_in_metrics(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        info = store.put(DIGEST, GOOD)
        with open(info.path, "rb") as fh:
            raw = bytearray(fh.read())
        raw[len(raw) // 2] ^= 0xFF
        with open(info.path, "wb") as fh:
            fh.write(raw)

        metrics = MetricsRegistry()
        fresh = ProfileStore(str(tmp_path), metrics=metrics)
        assert fresh.load(DIGEST) is None
        snap = metrics.snapshot()
        assert snap["serve.store.corrupt"]["value"] == 1
        assert snap["serve.store.quarantined"]["value"] == 1
        assert len(fresh.quarantined()) == 1
        stats = fresh.stats()
        assert stats["corrupt_segments"] == 1
        assert stats["quarantined_segments"] == 1
        assert stats["quarantine_dir_entries"] == 1

    def test_flip_in_schema_field_reads_as_corruption_not_stale(
        self, tmp_path
    ):
        store = ProfileStore(str(tmp_path))
        info = store.put(DIGEST, GOOD)
        with open(info.path) as fh:
            text = fh.read()
        mangled = text.replace(store.schema, "x" + store.schema[1:], 1)
        assert mangled != text
        with open(info.path, "w") as fh:
            fh.write(mangled)
        fresh = ProfileStore(str(tmp_path))
        assert fresh._classify(info.path)[0] == SEG_CORRUPT


class TestVerdicts:
    def test_ok_segment_classifies_ok(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        info = store.put(DIGEST, GOOD)
        verdict, doc = store._classify(info.path)
        assert verdict == SEG_OK
        assert doc["sha256"] == segment_checksum(
            {k: doc[k] for k in ("version", "schema", "entries")}
        )

    def test_stale_vs_legacy_vs_corrupt_are_distinct(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        body = {"version": STORE_VERSION, "schema": "other",
                "entries": []}
        stale = dict(body, sha256=segment_checksum(
            json.loads(json.dumps(body))
        ))
        assert store._classify(
            write_raw(store, json.dumps(stale), "seg-1-stale.json")
        )[0] == SEG_STALE
        legacy = {"version": 1, "schema": store.schema, "entries": []}
        assert store._classify(
            write_raw(store, json.dumps(legacy), "seg-2-legacy.json")
        )[0] == SEG_LEGACY
        assert store._classify(
            write_raw(store, "{", "seg-3-torn.json")
        )[0] == SEG_CORRUPT

    def test_quarantine_survives_collisions(self, tmp_path):
        """Two corrupt segments with the same name from different jobs
        both land in quarantine (digest-prefixed names)."""
        store = ProfileStore(str(tmp_path))
        other = "cd" * 32
        for digest in (DIGEST, other):
            path = os.path.join(store._job_dir(digest), "seg-1-x.json")
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as fh:
                fh.write("{torn")
            store.load(digest)
        assert len(store.quarantined()) == 2
