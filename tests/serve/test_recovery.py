"""Daemon-level fault tolerance: kill/recover, health, HTTP idempotency.

The acceptance invariant of the serving stack: a SIGKILLed daemon,
restarted on the same store root, completes every job it accepted with
the bit-identical winner an uninterrupted run produces -- and an
idempotent resubmission neither re-runs the job nor grows the store.
The in-process tests pin the HTTP surface (healthz/readyz, 409, journal
stats); the subprocess test delivers a real SIGKILL.
"""

import time

import pytest

from repro.serve import AstraServer, ProfileStore, ServeClient, ServeError
from repro.serve.chaos import ServeDaemon, _segment_files, _winner
from repro.serve.jobs import JobSpec, run_job

TINY_JOB = {"model": "scrnn", "batch": 4, "seq_len": 3, "budget": 400}


class TestHealthEndpoints:
    def test_healthz_reports_ok_and_uptime(self, tmp_path):
        with AstraServer(str(tmp_path)) as srv:
            doc = ServeClient(srv.url, timeout=5).healthz()
            assert doc["status"] == "ok"
            assert doc["uptime_s"] >= 0

    def test_readyz_ready_then_503_while_draining(self, tmp_path):
        with AstraServer(str(tmp_path)) as srv:
            client = ServeClient(srv.url, timeout=5)
            doc = client.readyz()
            assert doc["ready"] is True
            assert doc["store"]["available"] is True

            srv.queue.close(drain=True)  # draining: alive but not ready
            assert client.healthz()["status"] == "ok"
            with pytest.raises(ServeError) as err:
                client.readyz()
            assert err.value.status == 503

    def test_readyz_carries_drain_reasons(self, tmp_path):
        srv = AstraServer(str(tmp_path)).start()
        try:
            srv.queue.close(drain=True)
            ready, doc = srv.readiness()
            assert not ready
            assert any("closed" in reason for reason in doc["reasons"])
        finally:
            srv.shutdown(drain=False)


class TestHttpIdempotency:
    def test_same_key_dedupes_over_http(self, tmp_path):
        with AstraServer(str(tmp_path)) as srv:
            client = ServeClient(srv.url, timeout=5)
            first = client.submit(TINY_JOB, key="k1")
            again = client.submit(TINY_JOB, key="k1")
            assert again["id"] == first["id"]
            assert len(client.jobs()) == 1

    def test_key_conflict_is_409(self, tmp_path):
        with AstraServer(str(tmp_path)) as srv:
            client = ServeClient(srv.url, timeout=5)
            client.submit(TINY_JOB, key="k1")
            with pytest.raises(ServeError) as err:
                client.submit(dict(TINY_JOB, batch=8), key="k1")
            assert err.value.status == 409

    def test_malformed_key_is_400(self, tmp_path):
        with AstraServer(str(tmp_path)) as srv:
            client = ServeClient(srv.url, timeout=5)
            with pytest.raises(ServeError) as err:
                client.submit(dict(TINY_JOB, key=42))
            assert err.value.status == 400

    def test_stats_exposes_journal_and_recovery(self, tmp_path):
        with AstraServer(str(tmp_path)) as srv:
            stats = ServeClient(srv.url, timeout=5).stats()
            assert stats["journal"]["torn_records"] == 0
            assert stats["queue"]["recovered_jobs"] == 0
            assert stats["store"]["available"] is True


class TestInProcessRestart:
    def test_completed_jobs_survive_a_restart(self, tmp_path):
        root = str(tmp_path)
        spec = JobSpec.from_dict(TINY_JOB)
        with AstraServer(root) as srv:
            client = ServeClient(srv.url, timeout=5)
            done = client.run(TINY_JOB, timeout=120, key="k1")
            srv.queue.drain(timeout=60)

        with AstraServer(root) as srv2:
            client = ServeClient(srv2.url, timeout=5)
            doc = client.status(done["id"])
            assert doc["status"] == "done"
            assert doc["recovered"] is True
            assert _winner(doc["result"]) == _winner(done["result"])
            # the restored key map still dedupes, so nothing re-runs
            # and the store grows no duplicate segments
            before = _segment_files(root)
            assert client.submit(TINY_JOB, key="k1")["id"] == done["id"]
            assert _segment_files(root) == before
            assert spec.to_dict() == doc["spec"]


class TestRealSigkill:
    def test_sigkilled_daemon_recovers_bit_identical_winner(self, tmp_path):
        """The kill-recover invariant, with a real subprocess and a real
        SIGKILL (``repro chaos-serve`` sweeps the same scenario plus the
        store attacks)."""
        spec = JobSpec.from_dict(TINY_JOB)
        reference = run_job(
            spec, store=ProfileStore(str(tmp_path / "reference"))
        )

        serve_root = str(tmp_path / "serve")
        daemon = ServeDaemon(serve_root)
        try:
            client = ServeClient(daemon.url, timeout=10)
            job_id = client.submit(TINY_JOB, key="kill-me")["id"]
            deadline = time.monotonic() + 5.0
            while (time.monotonic() < deadline
                   and client.status(job_id)["status"] == "queued"):
                time.sleep(0.01)
        finally:
            daemon.kill()  # SIGKILL: no drain, no journal goodbye

        daemon = ServeDaemon(serve_root)
        try:
            client = ServeClient(daemon.url, timeout=10)
            doc = client.wait(job_id, timeout=120)
            assert doc["status"] == "done", doc.get("error")
            assert doc["recovered"] is True
            assert _winner(doc["result"]) == _winner(reference)
            # idempotent resubmit: same job back, store unchanged
            before = _segment_files(serve_root)
            assert client.submit(TINY_JOB, key="kill-me")["id"] == job_id
            assert _segment_files(serve_root) == before
            assert client.readyz()["ready"] is True
            daemon.shutdown(client)
        except BaseException:
            daemon.kill()
            raise
