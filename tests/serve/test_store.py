"""ProfileStore conformance: round-trip fidelity, crash safety,
version eviction, and multi-process first-writer-wins determinism.

The store is the serve daemon's only durable state; these tests pin the
contracts ``docs/serving.md`` promises: what goes in comes out (sentinel
values and nested tuple keys included), a torn write is invisible, a
schema change evicts, and concurrent writers cannot make two readers
disagree.
"""

import json
import multiprocessing
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import QUARANTINED_US
from repro.core.profile_index import ProfileIndex
from repro.serve.keys import store_schema_version
from repro.serve.store import ProfileStore

DIGEST = "ab" * 32
OTHER = "cd" * 32

# profile-index keys are context-mangled tuples: atoms and nested tuples
# of strings/ints, e.g. (("compare", "fk"),) or ("fusion", ("cell", 2))
atoms = st.one_of(st.text(max_size=8), st.integers(-1000, 1000))
keys = st.lists(
    st.one_of(atoms, st.tuples(atoms, atoms)), min_size=1, max_size=4
).map(tuple)
values = st.one_of(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    st.just(QUARANTINED_US),
)


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(entries=st.dictionaries(keys, values, max_size=12))
    def test_put_load_identity(self, tmp_path_factory, entries):
        root = tmp_path_factory.mktemp("store")
        store = ProfileStore(str(root))
        info = store.put(DIGEST, entries)
        loaded = store.load(DIGEST)
        if not entries:
            assert info is None
            assert loaded is None  # nothing written => never seen
        else:
            assert info.entries == len(entries)
            assert loaded.snapshot() == entries

    def test_quarantine_sentinel_survives(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, {("bad", ("cell", 0)): QUARANTINED_US})
        loaded = store.load(DIGEST)
        assert loaded.get(("bad", ("cell", 0))) == QUARANTINED_US

    def test_profile_index_input(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        index = ProfileIndex()
        index.record(("a", 1), 10.0)
        index.record((("compare", "fk"),), 20.0)
        store.put(DIGEST, index)
        assert store.entries(DIGEST) == [
            (("a", 1), 10.0), ((("compare", "fk"),), 20.0),
        ]

    def test_jobs_are_isolated(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, {("a",): 1.0})
        store.put(OTHER, {("b",): 2.0})
        assert store.load(DIGEST).snapshot() == {("a",): 1.0}
        assert store.load(OTHER).snapshot() == {("b",): 2.0}
        assert store.jobs() == sorted([DIGEST, OTHER])

    def test_malformed_digest_rejected(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        for bad in ("", "not-hex", "../escape", "AB" * 32):
            with pytest.raises(ValueError):
                store.put(bad, {("a",): 1.0})
            with pytest.raises(ValueError):
                store.load(bad)


class TestMergeSemantics:
    def test_first_segment_wins(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, {("a",): 10.0})
        store.put(DIGEST, {("a",): 99.0, ("b",): 2.0})
        assert store.load(DIGEST).snapshot() == {("a",): 10.0, ("b",): 2.0}

    def test_quarantine_sticky_across_segments(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, {("bad",): QUARANTINED_US})
        store.put(DIGEST, {("bad",): 5.0})
        assert store.load(DIGEST).get(("bad",)) == QUARANTINED_US

    def test_never_seen_vs_empty(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        assert store.load(DIGEST) is None
        assert store.entries(DIGEST) == []


class TestCrashSafety:
    def test_tmp_file_invisible(self, tmp_path):
        """A writer killed before the atomic rename leaves only a
        ``*.tmp`` file, which the loader must never read."""
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, {("a",): 1.0})
        job_dir = os.path.join(store.root, "index", DIGEST)
        torn = os.path.join(
            job_dir, "seg-00000000000000000000-00000000-000001.json.tmp"
        )
        with open(torn, "w") as fh:
            fh.write('{"version": 1, "schema": "x", "entries": [{"key"')
        assert store.load(DIGEST).snapshot() == {("a",): 1.0}
        assert store.corrupt_segments == 0

    def test_corrupt_segment_skipped_not_fatal(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, {("a",): 1.0})
        job_dir = os.path.join(store.root, "index", DIGEST)
        with open(os.path.join(job_dir, "seg-zzz-corrupt.json"), "w") as fh:
            fh.write("{truncated")
        assert store.load(DIGEST).snapshot() == {("a",): 1.0}
        assert store.corrupt_segments == 1

    def test_torn_meta_recovers(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, {("a",): 1.0})
        with open(os.path.join(store.root, "META.json"), "w") as fh:
            fh.write("{half a doc")
        reopened = ProfileStore(str(tmp_path))
        assert reopened.load(DIGEST).snapshot() == {("a",): 1.0}


class TestVersionEviction:
    def test_schema_change_evicts(self, tmp_path):
        old = ProfileStore(str(tmp_path), schema="old-schema-0000")
        old.put(DIGEST, {("a",): 1.0})
        new = ProfileStore(str(tmp_path))  # real schema != "old-schema-0000"
        assert new.evicted_segments == 1
        assert new.load(DIGEST) is None
        with open(os.path.join(str(tmp_path), "META.json")) as fh:
            assert json.load(fh)["schema"] == store_schema_version()

    def test_same_schema_keeps(self, tmp_path):
        ProfileStore(str(tmp_path)).put(DIGEST, {("a",): 1.0})
        reopened = ProfileStore(str(tmp_path))
        assert reopened.evicted_segments == 0
        assert reopened.load(DIGEST).snapshot() == {("a",): 1.0}

    def test_stale_survivor_filtered_at_read(self, tmp_path):
        """A segment written concurrently by an old-schema process after
        the eviction sweep must be filtered when loading, not merged."""
        store = ProfileStore(str(tmp_path))
        store.put(DIGEST, {("a",): 1.0})
        job_dir = os.path.join(store.root, "index", DIGEST)
        straggler = os.path.join(
            job_dir, "seg-00000000000000000001-00000001-000001.json"
        )
        with open(straggler, "w") as fh:
            json.dump({"version": 1, "schema": "stale-0000",
                       "entries": [{"key": ["poison"], "value": 666.0}]}, fh)
        assert store.load(DIGEST).snapshot() == {("a",): 1.0}

    def test_schema_version_tracks_simulator_source(self):
        """The schema digest is a pure function of the measurement-
        semantics module sources -- stable within a process."""
        v = store_schema_version()
        assert isinstance(v, str) and len(v) == 16
        assert v == store_schema_version()


def _writer(args):
    """Concurrent-writer body (module-level: must pickle under spawn)."""
    root, writer_id = args
    store = ProfileStore(root)
    for batch in range(3):
        store.put(DIGEST, {
            ("shared", batch): float(writer_id),
            ("private", writer_id, batch): 1.0,
        })
    return writer_id


class TestConcurrentWriters:
    def test_multiprocess_first_writer_wins_determinism(self, tmp_path):
        """N processes race segments into one job; every subsequent load
        of the resulting segment set is identical, shared keys carry
        exactly one writer's value, and no write is lost."""
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(3) as pool:
            done = pool.map(_writer, [(str(tmp_path), w) for w in range(3)])
        assert sorted(done) == [0, 1, 2]

        store = ProfileStore(str(tmp_path))
        first = store.load(DIGEST).snapshot()
        for _ in range(3):
            assert ProfileStore(str(tmp_path)).load(DIGEST).snapshot() == first
        for batch in range(3):
            assert first[("shared", batch)] in (0.0, 1.0, 2.0)
            for writer in range(3):
                assert first[("private", writer, batch)] == 1.0
        # the winning value per shared key is the sorted-first segment's
        segments = sorted(
            os.listdir(os.path.join(store.root, "index", DIGEST))
        )
        expected = {}
        for name in segments:
            with open(os.path.join(store.root, "index", DIGEST, name)) as fh:
                for entry in json.load(fh)["entries"]:
                    expected.setdefault(tuple(
                        tuple(p) if isinstance(p, list) else p
                        for p in entry["key"]
                    ), entry["value"])
        assert first == expected
