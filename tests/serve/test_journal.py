"""JobJournal conformance: WAL durability, torn tails, compaction.

The journal is what lets a SIGKILLed daemon keep its promises; these
tests pin its contracts directly (the daemon-level behavior is pinned in
``test_recovery.py`` and ``repro chaos-serve``):

* recovery replays records in order, last transition wins;
* a torn final line -- the only tear an append-only log can suffer --
  is skipped and counted, never fatal;
* records for unknown jobs are orphans, not crashes;
* compaction preserves exactly the recovered state;
* the whole of the above holds under *arbitrary* interleavings of
  submit/start/terminal records (Hypothesis).
"""

import json
import os

from hypothesis import given, settings, strategies as st

from repro.serve.journal import (
    RECORD_DEAD,
    RECORD_DONE,
    RECORD_FAIL,
    RECORD_START,
    RECORD_SUBMIT,
    TERMINAL_RECORDS,
    JobJournal,
)

SPEC = {"model": "scrnn", "batch": 4, "seq_len": 3, "budget": 400}


def make_journal(tmp_path) -> JobJournal:
    # fsync off: these tests exercise logic, not the disk
    return JobJournal(str(tmp_path), fsync=False)


class TestBasics:
    def test_empty_journal_recovers_empty(self, tmp_path):
        state = make_journal(tmp_path).recover()
        assert state.jobs == {}
        assert state.torn_records == 0
        assert state.orphan_records == 0

    def test_submit_then_done_round_trips(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.submitted("job-000001", SPEC, key="k1")
        journal.started("job-000001", 1)
        journal.completed("job-000001", {"best_time_us": 42.0})

        state = make_journal(tmp_path).recover()
        entry = state.jobs["job-000001"]
        assert entry.spec == SPEC
        assert entry.key == "k1"
        assert entry.record == RECORD_DONE
        assert entry.result == {"best_time_us": 42.0}
        assert entry.attempts == 1
        assert state.completed() == [entry]
        assert state.incomplete() == []

    def test_incomplete_job_is_owed(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.submitted("job-000001", SPEC)
        journal.started("job-000001", 1)
        journal.started("job-000001", 2)

        state = journal.recover()
        (entry,) = state.incomplete()
        assert entry.record == RECORD_START
        assert entry.attempts == 2
        assert not entry.terminal

    def test_last_transition_wins(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.submitted("job-000001", SPEC)
        journal.failed("job-000001", "flaky")
        journal.completed("job-000001", {"best_time_us": 1.0})

        entry = journal.recover().jobs["job-000001"]
        assert entry.record == RECORD_DONE
        assert entry.error is None

    def test_dead_letter_record(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.submitted("job-000001", SPEC)
        journal.dead("job-000001", "dead-lettered after 3 attempts")

        entry = journal.recover().jobs["job-000001"]
        assert entry.record == RECORD_DEAD
        assert "dead-lettered" in entry.error

    def test_max_seq_tracks_job_ids(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.submitted("job-000007", SPEC)
        journal.submitted("job-000003", SPEC)
        assert journal.recover().max_seq == 7


class TestMalformedInput:
    def test_torn_final_line_is_skipped_and_counted(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.submitted("job-000001", SPEC)
        journal.completed("job-000001", {"x": 1})
        journal.submitted("job-000002", SPEC)
        with open(journal.path, "rb+") as fh:
            fh.seek(-9, os.SEEK_END)
            fh.truncate()

        state = journal.recover()
        assert state.torn_records == 1
        assert list(state.jobs) == ["job-000001"]  # job-000002's 202 never
        assert state.jobs["job-000001"].terminal  # landed; job-1 intact

    def test_garbage_interior_line_is_skipped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.submitted("job-000001", SPEC)
        journal.append({"not": "a journal record"})
        journal.submitted("job-000002", SPEC)

        state = journal.recover()
        assert state.torn_records == 1
        assert set(state.jobs) == {"job-000001", "job-000002"}

    def test_orphan_transition_counted_not_fatal(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.completed("job-000009", {"x": 1})  # submit never journaled

        state = journal.recover()
        assert state.jobs == {}
        assert state.orphan_records == 1

    def test_submit_without_spec_is_torn(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append({"v": 1, "t": RECORD_SUBMIT, "id": "job-000001"})
        state = journal.recover()
        assert state.jobs == {}
        assert state.torn_records == 1


class TestCompaction:
    def test_compact_preserves_state_and_drops_noise(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.submitted("job-000001", SPEC, key="k1")
        for attempt in (1, 2, 3):
            journal.started("job-000001", attempt)
        journal.dead("job-000001", "gave up")
        journal.submitted("job-000002", SPEC)
        journal.started("job-000002", 1)

        before = journal.recover()
        size_before = os.path.getsize(journal.path)
        journal.compact(before)
        assert os.path.getsize(journal.path) < size_before

        after = journal.recover()
        assert list(after.jobs) == list(before.jobs)
        dead = after.jobs["job-000001"]
        assert dead.record == RECORD_DEAD and dead.key == "k1"
        # an incomplete job keeps only its submit: a fresh retry budget
        requeued = after.jobs["job-000002"]
        assert requeued.record == RECORD_SUBMIT
        assert requeued.attempts == 0

    def test_compact_is_atomic(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.submitted("job-000001", SPEC)
        journal.compact(journal.recover())
        leftovers = [
            n for n in os.listdir(os.path.dirname(journal.path))
            if ".tmp" in n
        ]
        assert leftovers == []


# -- the property: arbitrary interleavings round-trip consistently -----------

_OPS = ("submit", "start", "done", "fail", "dead")

ops_strategy = st.lists(
    st.tuples(st.sampled_from(_OPS), st.integers(0, 4)),
    max_size=30,
)


def _apply(journal: JobJournal, op: str, idx: int) -> tuple:
    """Write one record; return its model tuple."""
    job_id = f"job-{idx + 1:06d}"
    key = f"key-{idx}" if idx % 2 == 0 else None
    if op == "submit":
        journal.submitted(job_id, dict(SPEC, seed=idx), key=key)
    elif op == "start":
        journal.started(job_id, 1)
    elif op == "done":
        journal.completed(job_id, {"best_time_us": float(idx)})
    elif op == "fail":
        journal.failed(job_id, f"boom-{idx}")
    else:
        journal.dead(job_id, f"dead-{idx}")
    return (op, job_id, key, idx)


def _replay(model_ops):
    """The journal's documented semantics, in ~20 lines of pure python."""
    jobs: dict = {}
    orphans = 0
    for op, job_id, key, idx in model_ops:
        if op == "submit":
            jobs.setdefault(job_id, {
                "key": key, "record": RECORD_SUBMIT, "attempts": 0,
                "result": None, "error": None,
            })
            continue
        entry = jobs.get(job_id)
        if entry is None:
            orphans += 1
            continue
        entry["record"] = {
            "start": RECORD_START, "done": RECORD_DONE,
            "fail": RECORD_FAIL, "dead": RECORD_DEAD,
        }[op]
        if op == "start":
            entry["attempts"] += 1
        elif op == "done":
            entry["result"] = {"best_time_us": float(idx)}
            entry["error"] = None
        else:
            entry["error"] = f"{'boom' if op == 'fail' else 'dead'}-{idx}"
            entry["result"] = None
    return jobs, orphans


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy, tear=st.integers(0, 40))
def test_recovery_matches_model_under_any_interleaving(
    tmp_path_factory, ops, tear
):
    tmp = tmp_path_factory.mktemp("journal")
    journal = JobJournal(str(tmp), fsync=False)
    model_ops = [_apply(journal, op, idx) for op, idx in ops]

    expected_torn = 0
    if tear >= 2 and model_ops:
        # tear the *final* record mid-line, the only tear appends allow:
        # any strict prefix of a JSON object line is unparseable
        with open(journal.path, "rb") as fh:
            lines = fh.readlines()
        chop = min(tear, len(lines[-1]) - 1)
        if chop >= 2:
            with open(journal.path, "rb+") as fh:
                fh.seek(-chop, os.SEEK_END)
                fh.truncate()
            model_ops = model_ops[:-1]
            expected_torn = 1

    state = JobJournal(str(tmp), fsync=False).recover()
    jobs, orphans = _replay(model_ops)

    assert list(state.jobs) == list(jobs)  # same jobs, same submit order
    for job_id, expect in jobs.items():
        entry = state.jobs[job_id]
        assert entry.key == expect["key"]
        assert entry.record == expect["record"]
        assert entry.attempts == expect["attempts"]
        assert entry.result == expect["result"]
        assert entry.error == expect["error"]
    assert state.orphan_records == orphans
    assert state.torn_records == expected_torn

    # recovery is idempotent ...
    again = JobJournal(str(tmp), fsync=False).recover()
    assert {k: vars(v) for k, v in again.jobs.items()} \
        == {k: vars(v) for k, v in state.jobs.items()}

    # ... and compaction preserves exactly the meaningful state
    journal.compact(state)
    compacted = journal.recover()
    assert list(compacted.jobs) == list(state.jobs)
    assert compacted.torn_records == 0
    for job_id, entry in state.jobs.items():
        after = compacted.jobs[job_id]
        assert after.key == entry.key
        if entry.record in TERMINAL_RECORDS:
            assert after.record == entry.record
            assert after.result == entry.result
            assert after.error == entry.error
        else:
            assert after.record == RECORD_SUBMIT
            assert after.attempts == 0


def test_journal_lines_are_json_objects(tmp_path):
    journal = make_journal(tmp_path)
    journal.submitted("job-000001", SPEC, key="k")
    journal.started("job-000001", 1)
    journal.completed("job-000001", {"x": 1})
    with open(journal.path) as fh:
        for line in fh:
            doc = json.loads(line)
            assert doc["v"] == 1
            assert doc["t"] in (RECORD_SUBMIT, RECORD_START, RECORD_DONE)
