"""ServeClient resilience: error taxonomy, retries, circuit breaker.

A client that cannot say *why* a request failed forces every caller to
treat all failures as retry-blindly; these tests pin the taxonomy
(connect-phase vs mid-response, with the failed method + URL in every
message), the bounded-retry schedule, and the breaker's trip/half-open/
reset cycle -- including that breaker errors still degrade warm start
to a cold run through the ``except OSError`` path.
"""

import http.client
import socket

import pytest

from repro.serve.client import (
    CircuitOpenError,
    ServeClient,
    ServeConnectionError,
    ServeError,
    ServeResponseError,
    ServeTransportError,
    _classify,
)


def make_client(**kwargs) -> ServeClient:
    kwargs.setdefault("sleep", lambda s: None)
    return ServeClient("http://127.0.0.1:1", **kwargs)


class FlakyTransport:
    """Scripted ``_once`` replacement: a list of exceptions, then success."""

    def __init__(self, failures, result=None):
        self.failures = list(failures)
        self.result = result if result is not None else {"ok": True}
        self.calls = 0

    def __call__(self, method, url, doc=None):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return self.result


class TestClassification:
    @pytest.mark.parametrize("reason", [
        ConnectionRefusedError(111, "refused"),
        socket.gaierror(-2, "name or service not known"),
        socket.timeout("timed out"),
        OSError("no route to host"),  # unknown OSError: safe-to-retry bin
    ])
    def test_connect_phase(self, reason):
        exc = _classify("GET", "http://h:1/jobs", reason)
        assert isinstance(exc, ServeConnectionError)
        assert exc.phase == "connect"

    @pytest.mark.parametrize("reason", [
        http.client.RemoteDisconnected("closed"),
        http.client.IncompleteRead(b"par"),
        http.client.BadStatusLine("garbage"),
        ConnectionResetError(104, "reset"),
        BrokenPipeError(32, "pipe"),
        http.client.HTTPException("protocol violation"),
    ])
    def test_mid_response(self, reason):
        exc = _classify("POST", "http://h:1/jobs", reason)
        assert isinstance(exc, ServeResponseError)
        assert exc.phase == "response"

    def test_message_carries_method_and_url(self):
        exc = _classify("PUT", "http://h:1/index/ab", OSError("down"))
        assert "PUT" in str(exc)
        assert "http://h:1/index/ab" in str(exc)
        assert exc.method == "PUT"
        assert exc.url == "http://h:1/index/ab"

    def test_transport_errors_degrade_like_oserror(self):
        # warm start catches OSError to fall back to a cold run; every
        # client failure mode must stay inside that contract
        for cls in (ServeTransportError, ServeConnectionError,
                    ServeResponseError, CircuitOpenError):
            assert issubclass(cls, OSError)

    def test_serve_error_context_and_pure_message(self):
        exc = ServeError(503, "queue full", method="POST",
                         url="http://h:1/jobs")
        assert "POST" in str(exc) and "http://h:1/jobs" in str(exc)
        assert exc.message == "queue full"  # daemon text, uncontaminated


class TestConnectionRefusedForReal:
    def test_refused_is_connection_error_with_url(self):
        # bind-then-close guarantees an unused port
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServeClient(f"http://127.0.0.1:{port}", timeout=2,
                             retries=0, breaker_threshold=0)
        with pytest.raises(ServeConnectionError) as err:
            client.stats()
        assert "GET" in str(err.value)
        assert f"http://127.0.0.1:{port}/stats" in str(err.value)


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        client = make_client(retries=2)
        slept = []
        client._sleep = slept.append
        transport = FlakyTransport([
            ServeConnectionError("GET", "u", "refused"),
            ServeResponseError("GET", "u", "reset"),
        ])
        client._once = transport
        assert client._request("GET", "/stats") == {"ok": True}
        assert transport.calls == 3
        # exponential: backoff_s, then 2 * backoff_s
        assert slept == [client.backoff_s, client.backoff_s * 2]

    def test_retry_budget_exhausted_raises_last_error(self):
        client = make_client(retries=1, breaker_threshold=0)
        client._once = FlakyTransport([
            ServeConnectionError("GET", "u", "refused 1"),
            ServeResponseError("GET", "u", "reset 2"),
            ServeConnectionError("GET", "u", "refused 3"),
        ])
        with pytest.raises(ServeResponseError, match="reset 2"):
            client._request("GET", "/stats")

    def test_daemon_errors_are_not_retried(self):
        client = make_client(retries=3)
        transport = FlakyTransport([ServeError(400, "bad spec")])
        client._once = transport
        with pytest.raises(ServeError):
            client._request("POST", "/jobs", {})
        assert transport.calls == 1


class TestCircuitBreaker:
    def make(self, threshold=2, reset_s=10.0, retries=0):
        clock = {"now": 0.0}
        client = make_client(retries=retries, breaker_threshold=threshold,
                             breaker_reset_s=reset_s,
                             clock=lambda: clock["now"])
        return client, clock

    def trip(self, client, n):
        for _ in range(n):
            client._once = FlakyTransport(
                [ServeConnectionError("GET", "u", "refused")]
            )
            with pytest.raises(ServeTransportError):
                client._request("GET", "/stats")

    def test_breaker_trips_and_fails_fast(self):
        client, _clock = self.make(threshold=2)
        self.trip(client, 2)
        assert client.breaker_open
        transport = FlakyTransport([])
        client._once = transport
        with pytest.raises(CircuitOpenError) as err:
            client._request("GET", "/stats")
        assert transport.calls == 0  # no network while open
        assert "circuit breaker open" in str(err.value)

    def test_half_open_probe_after_cooldown_resets_on_success(self):
        client, clock = self.make(threshold=2, reset_s=10.0)
        self.trip(client, 2)
        clock["now"] += 10.0
        transport = FlakyTransport([])
        client._once = transport
        assert client._request("GET", "/stats") == {"ok": True}
        assert transport.calls == 1
        assert not client.breaker_open
        assert client._consecutive_failures == 0

    def test_failed_probe_retrips_immediately(self):
        client, clock = self.make(threshold=2, reset_s=10.0)
        self.trip(client, 2)
        clock["now"] += 10.0
        client._once = FlakyTransport(
            [ServeConnectionError("GET", "u", "still down")]
        )
        with pytest.raises(ServeConnectionError):
            client._request("GET", "/stats")
        assert client.breaker_open  # one failure re-trips: count preserved

    def test_threshold_zero_disables_breaker(self):
        client, _clock = self.make(threshold=0)
        self.trip(client, 10)
        assert not client.breaker_open
