"""JobQueue supervision: retries, dead-lettering, deadlines, recovery.

The queue must drive every accepted job to a terminal state -- done,
failed, or dead -- no matter how the runner misbehaves, and a restarted
queue must keep every promise its predecessor journaled.  Runners here
are scripted fakes; the real-daemon equivalents live in
``test_recovery.py`` and ``repro chaos-serve``.
"""

import threading
import time

import pytest

from repro.faults import DeviceOOMError, JobTimeoutError, KernelLaunchError
from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import (
    STATUS_DEAD,
    STATUS_DONE,
    STATUS_FAILED,
    IdempotencyConflictError,
    JobQueue,
    JobSpec,
)
from repro.serve.journal import JobJournal

SPEC = JobSpec(model="scrnn", batch=4, seq_len=3, budget=400)


class ScriptedRunner:
    """Raise the scripted exceptions in order, then succeed."""

    def __init__(self, failures=()):
        self.failures = list(failures)
        self.calls = 0
        self.lock = threading.Lock()

    def __call__(self, spec):
        with self.lock:
            self.calls += 1
            if self.failures:
                raise self.failures.pop(0)
        return {"best_time_us": 1.0, "spec_model": spec.model}


def make_queue(runner, tmp_path=None, **kwargs):
    journal = JobJournal(str(tmp_path), fsync=False) if tmp_path else None
    kwargs.setdefault("backoff_s", 0.001)
    return JobQueue(runner, journal=journal, **kwargs)


class TestRetries:
    def test_transient_fault_retried_to_success(self):
        runner = ScriptedRunner([KernelLaunchError("k0"),
                                 KernelLaunchError("k0")])
        metrics = MetricsRegistry()
        q = make_queue(runner, max_attempts=3, metrics=metrics)
        try:
            job = q.submit(SPEC)
            assert q.drain(timeout=10)
            assert job.status == STATUS_DONE
            assert job.attempts == 3
            assert runner.calls == 3
            snap = metrics.snapshot()
            assert snap["serve.retry.attempts"]["value"] == 2
        finally:
            q.close(drain=False)

    def test_dead_letter_after_max_attempts(self):
        runner = ScriptedRunner([KernelLaunchError("k0")] * 10)
        metrics = MetricsRegistry()
        q = make_queue(runner, max_attempts=3, metrics=metrics)
        try:
            job = q.submit(SPEC)
            assert q.drain(timeout=10)
            assert job.status == STATUS_DEAD
            assert runner.calls == 3  # budget respected, then given up
            assert "dead-lettered after 3 attempts" in job.error
            assert metrics.snapshot()["serve.jobs.dead"]["value"] == 1
        finally:
            q.close(drain=False)

    def test_non_transient_fault_fails_immediately(self):
        runner = ScriptedRunner([DeviceOOMError(100, 50)])
        q = make_queue(runner, max_attempts=5)
        try:
            job = q.submit(SPEC)
            assert q.drain(timeout=10)
            assert job.status == STATUS_FAILED
            assert runner.calls == 1  # deterministic failure: no retry
        finally:
            q.close(drain=False)

    def test_generic_exception_fails_without_killing_worker(self):
        runner = ScriptedRunner([RuntimeError("boom")])
        q = make_queue(runner, max_attempts=3)
        try:
            first = q.submit(SPEC)
            second = q.submit(SPEC)
            assert q.drain(timeout=10)
            assert first.status == STATUS_FAILED
            assert second.status == STATUS_DONE  # worker survived
        finally:
            q.close(drain=False)

    def test_backoff_is_deterministic_and_exponential(self):
        q = make_queue(ScriptedRunner(), backoff_s=0.1)
        try:
            first = q._backoff("job-000001", 1)
            assert first == q._backoff("job-000001", 1)  # reproducible
            assert first != q._backoff("job-000002", 1)  # decorrelated
            assert 0.1 <= first <= 0.15
            assert 0.2 <= q._backoff("job-000001", 2) <= 0.3
        finally:
            q.close(drain=False)


class TestDeadlines:
    def test_wedged_attempt_times_out_and_dead_letters(self):
        release = threading.Event()

        def wedged(spec):
            release.wait(30)
            return {}

        q = make_queue(wedged, max_attempts=2, deadline_s=0.05)
        try:
            job = q.submit(SPEC)
            assert q.drain(timeout=10)
            assert job.status == STATUS_DEAD
            assert JobTimeoutError.kind in ("job_timeout",)
            assert "deadline" in job.error
        finally:
            release.set()
            q.close(drain=False)

    def test_fast_job_unaffected_by_deadline(self):
        q = make_queue(ScriptedRunner(), deadline_s=5.0)
        try:
            job = q.submit(SPEC)
            assert q.drain(timeout=10)
            assert job.status == STATUS_DONE
        finally:
            q.close(drain=False)


class TestDrainPromptness:
    def test_drain_returns_promptly_after_last_job(self):
        """Drain is condition-driven, not a polling sleep loop: it must
        return within milliseconds of the final completion, far under
        the old 100ms poll interval."""
        gate = threading.Event()

        def runner(spec):
            gate.wait(10)
            return {}

        q = make_queue(runner)
        try:
            q.submit(SPEC)
            waited = {}

            def drainer():
                start = time.monotonic()
                assert q.drain(timeout=10)
                waited["s"] = time.monotonic() - start

            thread = threading.Thread(target=drainer)
            thread.start()
            time.sleep(0.05)  # let drain() block first
            released = time.monotonic()
            gate.set()
            thread.join(timeout=10)
            assert "s" in waited
            latency = time.monotonic() - released
            assert latency < 0.09, f"drain woke {latency:.3f}s after finish"
        finally:
            gate.set()
            q.close(drain=False)


class TestIdempotency:
    def test_same_key_same_spec_dedupes(self):
        metrics = MetricsRegistry()
        q = make_queue(ScriptedRunner(), metrics=metrics)
        try:
            first = q.submit(SPEC, key="k1")
            again = q.submit(SPEC, key="k1")
            assert again is first
            assert metrics.snapshot()["serve.jobs.deduped"]["value"] == 1
        finally:
            q.close(drain=False)

    def test_same_key_different_spec_conflicts(self):
        q = make_queue(ScriptedRunner())
        try:
            q.submit(SPEC, key="k1")
            with pytest.raises(IdempotencyConflictError):
                q.submit(JobSpec(model="scrnn", batch=8), key="k1")
        finally:
            q.close(drain=False)


class TestJournaledRecovery:
    def test_unfinished_jobs_requeued_and_completed(self, tmp_path):
        # first life: accept two jobs, finish neither (runner wedges)
        wedge = threading.Event()

        def stuck(spec):
            wedge.wait(30)
            return {}

        first_life = make_queue(stuck, tmp_path=tmp_path)
        a = first_life.submit(SPEC, key="ka")
        b = first_life.submit(SPEC)
        # SIGKILL stand-in: abandon the queue without close/drain
        wedge.set()
        first_life.drain(timeout=10)

        del first_life
        # second life, same journal: results must be restored, not re-run
        runner = ScriptedRunner()
        metrics = MetricsRegistry()
        second_life = make_queue(runner, tmp_path=tmp_path, metrics=metrics)
        try:
            ra = second_life.get(a.job_id)
            rb = second_life.get(b.job_id)
            assert ra.status == STATUS_DONE and rb.status == STATUS_DONE
            assert ra.recovered and rb.recovered
            assert runner.calls == 0  # served from the journal
            snap = metrics.snapshot()
            assert snap["serve.recovery.restored"]["value"] == 2
            # the idempotency key still maps across the restart
            assert second_life.submit(SPEC, key="ka") is ra
        finally:
            second_life.close(drain=False)

    def test_crash_before_completion_reruns_the_job(self, tmp_path):
        journal = JobJournal(str(tmp_path), fsync=False)
        journal.submitted("job-000001", SPEC.to_dict(), key="k1")
        journal.started("job-000001", 1)  # crashed mid-attempt

        runner = ScriptedRunner()
        metrics = MetricsRegistry()
        q = make_queue(runner, tmp_path=tmp_path, metrics=metrics)
        try:
            assert q.drain(timeout=10)
            job = q.get("job-000001")
            assert job.status == STATUS_DONE
            assert job.recovered
            assert runner.calls == 1  # the owed work was actually re-run
            snap = metrics.snapshot()
            assert snap["serve.recovery.requeued"]["value"] == 1
        finally:
            q.close(drain=False)

    def test_recovered_backlog_may_exceed_capacity(self, tmp_path):
        journal = JobJournal(str(tmp_path), fsync=False)
        for i in range(4):
            journal.submitted(f"job-{i + 1:06d}", SPEC.to_dict())

        gate = threading.Event()

        def slow(spec):
            gate.wait(10)
            return {}

        q = make_queue(slow, tmp_path=tmp_path, capacity=2)
        try:
            # recovery re-enqueued 4 > capacity 2: owed work is never
            # dropped, and new submissions see backpressure instead
            from repro.serve.jobs import QueueFullError

            with pytest.raises(QueueFullError):
                q.submit(SPEC)
            gate.set()
            assert q.drain(timeout=10)
            assert all(j.status == STATUS_DONE for j in q.jobs())
        finally:
            gate.set()
            q.close(drain=False)

    def test_new_ids_continue_after_recovered_sequence(self, tmp_path):
        journal = JobJournal(str(tmp_path), fsync=False)
        journal.submitted("job-000005", SPEC.to_dict())
        journal.completed("job-000005", {})
        q = make_queue(ScriptedRunner(), tmp_path=tmp_path)
        try:
            job = q.submit(SPEC)
            assert job.job_id == "job-000006"  # no id reuse after restart
        finally:
            q.close(drain=False)
