"""Cross-job warm start: the ISSUE's acceptance gate, pinned as tests.

A cold run populates a store; a warm rerun of the identical job must
converge to a *bit-identical* winner while measuring at most half the
configurations (in practice: zero -- every profile-index probe hits).
Also pinned: provenance attribution of warm-seeded entries, digest
sensitivity (a different job must not inherit), and the store/report
accounting the CLI and ``repro bench`` surface.
"""

import os

import pytest

from repro.core.session import AstraSession
from repro.serve.keys import job_digest
from repro.serve.store import ProfileStore

BUDGET = 400

#: budgets large enough for the *cold* run to converge (not be capped):
#: a budget-capped cold run publishes a partial index, and the warm
#: rerun then spends its budget measuring configurations the cold run
#: never reached -- deeper exploration, but not the reuse this gate pins
CONVERGED_BUDGET = {"scrnn": 400, "milstm": 1200}


def _run(model, store, budget=BUDGET, **kwargs):
    session = AstraSession(model, store=store, **kwargs)
    try:
        return session.optimize(max_minibatches=budget), session
    finally:
        session.close()


def _assignment(report):
    return {k: repr(v) for k, v in report.astra.assignment.items()}


class TestWarmConvergence:
    @pytest.mark.parametrize("model_name", ["scrnn", "milstm"])
    def test_identical_winner_fewer_configs(
        self, model_name, tiny_scrnn, tiny_milstm, tmp_path
    ):
        model = {"scrnn": tiny_scrnn, "milstm": tiny_milstm}[model_name]
        budget = CONVERGED_BUDGET[model_name]
        store = str(tmp_path / "store")
        cold, _ = _run(model, store, budget=budget)
        warm, _ = _run(model, store, budget=budget)

        assert cold.configs_explored > 0
        assert _assignment(warm) == _assignment(cold)
        assert warm.best_time_us == cold.best_time_us
        assert warm.speedup_over_native == cold.speedup_over_native
        # the acceptance gate: at most 50% of the cold measurements --
        # and on the deterministic simulator a full index means zero
        assert warm.configs_explored <= 0.5 * cold.configs_explored
        assert warm.configs_explored == 0

    def test_warm_report_accounting(self, tiny_scrnn, tmp_path):
        store = str(tmp_path / "store")
        cold, _ = _run(tiny_scrnn, store)
        assert cold.warm["seeded_entries"] == 0
        assert cold.warm["sources"] == [
            {"source": "store", "seeded_entries": 0, "duplicates": 0}
        ]
        warm, session = _run(tiny_scrnn, store)
        assert warm.warm["seeded_entries"] > 0
        assert warm.warm["digest"] == session.job_digest()
        (src,) = warm.warm["sources"]
        assert src["source"] == "store"
        assert src["seeded_entries"] == warm.warm["seeded_entries"]

    def test_cold_without_store_has_no_warm_block(self, tiny_scrnn):
        session = AstraSession(tiny_scrnn)
        try:
            report = session.optimize(max_minibatches=BUDGET)
        finally:
            session.close()
        assert report.warm == {}
        assert session.job_digest() is None


class TestProvenanceAttribution:
    def test_warm_seeded_entries_attributed(self, tiny_scrnn, tmp_path):
        from repro.obs.provenance import ProvenanceLog

        store = str(tmp_path / "store")
        _run(tiny_scrnn, store)
        log = ProvenanceLog()
        warm, _ = _run(tiny_scrnn, store, provenance=log)
        (event,) = log.warm_events()
        assert event["source"] == "store"
        assert event["entries"] == warm.warm["seeded_entries"]
        assert event["digest"] == warm.warm["digest"]
        # warm events precede every exploration event and survive both
        # serialization and rendering
        assert log.events[0]["event"] == "warm"
        replayed = ProvenanceLog.from_dict(log.to_dict())
        assert replayed.warm_events() == log.warm_events()
        assert "warm-start:" in log.render()

    def test_cold_run_records_no_warm_event(self, tiny_scrnn):
        from repro.obs.provenance import ProvenanceLog

        log = ProvenanceLog()
        session = AstraSession(tiny_scrnn, provenance=log)
        try:
            session.optimize(max_minibatches=BUDGET)
        finally:
            session.close()
        assert log.warm_events() == []


class TestDigestIsolation:
    def test_different_job_does_not_inherit(
        self, tiny_scrnn, tiny_milstm, tmp_path
    ):
        store = str(tmp_path / "store")
        _run(tiny_scrnn, store)
        other, _ = _run(tiny_milstm, store)
        assert other.warm["seeded_entries"] == 0
        assert other.configs_explored > 0

    def test_feature_set_changes_digest(self, tiny_scrnn, device):
        from repro.core.enumerator import AstraFeatures

        d_all = job_digest(tiny_scrnn.graph, device, AstraFeatures.preset("all"))
        d_fk = job_digest(tiny_scrnn.graph, device, AstraFeatures.preset("FK"))
        assert d_all != d_fk

    def test_seed_excluded_from_digest(self, tiny_scrnn, tmp_path):
        """Base-clock measurements are seed-independent, so tenants with
        different seeds deliberately share one warm-start key."""
        store = str(tmp_path / "store")
        cold, _ = _run(tiny_scrnn, store, seed=0)
        warm, _ = _run(tiny_scrnn, store, seed=7)
        assert warm.warm["seeded_entries"] > 0
        assert _assignment(warm) == _assignment(cold)


class TestPublishDelta:
    def test_second_run_publishes_nothing_new(self, tiny_scrnn, tmp_path):
        store_path = str(tmp_path / "store")
        _run(tiny_scrnn, store_path)
        store = ProfileStore(store_path)
        (digest,) = store.jobs()
        segments_after_cold = store.stats()["segments"]
        _run(tiny_scrnn, store_path)
        assert ProfileStore(store_path).stats()["segments"] == \
            segments_after_cold
        assert ProfileStore(store_path).load(digest).snapshot() == \
            store.load(digest).snapshot()

    def test_store_directory_layout(self, tiny_scrnn, tmp_path):
        store_path = str(tmp_path / "store")
        _, session = _run(tiny_scrnn, store_path)
        digest = session.job_digest()
        assert os.path.isfile(os.path.join(store_path, "META.json"))
        job_dir = os.path.join(store_path, "index", digest)
        segments = [n for n in os.listdir(job_dir) if n.endswith(".json")]
        assert len(segments) == 1
        assert segments[0].startswith("seg-")
