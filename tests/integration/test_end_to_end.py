"""End-to-end integration tests across the whole stack."""

import pytest

from repro import AstraSession
from repro.baselines import run_cudnn, run_native, run_xla
from repro.gpu import P100, V100
from repro.models import MODEL_BUILDERS
from repro.runtime import Dispatcher, Executor
from tests.conftest import TINY


class TestAllModelsAllPresets:
    @pytest.mark.parametrize("name", list(MODEL_BUILDERS))
    def test_optimization_helps_every_model(self, name, request):
        fixture = {
            "scrnn": "tiny_scrnn", "milstm": "tiny_milstm",
            "sublstm": "tiny_sublstm", "stacked_lstm": "tiny_stacked_lstm",
            "gnmt": "tiny_gnmt",
        }[name]
        model = request.getfixturevalue(fixture)
        report = AstraSession(model, features="FK", seed=0).optimize()
        assert report.speedup_over_native >= 1.0

    @pytest.mark.parametrize("name", ["scrnn", "sublstm"])
    def test_full_preset_on_small_models(self, name, request):
        model = request.getfixturevalue(f"tiny_{name}")
        report = AstraSession(model, features="all", seed=0).optimize()
        assert report.speedup_over_native >= 1.0
        assert report.astra.configs_explored > 0


class TestPlanConsistency:
    """Every plan any component produces must cover the same computation."""

    def _covered_compute_nodes(self, graph, plan):
        free = {"reshape", "fill"}
        expected = {
            n.node_id for n in graph.compute_nodes() if n.op.name not in free
        }
        covered = {
            nid for u in plan.units for nid in u.node_ids
            if not graph.node(nid).is_leaf
        }
        return expected, covered

    def test_astra_plan_covers_graph(self, tiny_sublstm):
        report = AstraSession(tiny_sublstm, features="all", seed=0).optimize()
        expected, covered = self._covered_compute_nodes(
            tiny_sublstm.graph, report.astra.best_plan
        )
        assert expected == covered

    def test_baseline_plans_cover_graph(self, tiny_stacked_lstm, device):
        from repro.baselines import cudnn_plan, native_plan, xla_plan

        graph = tiny_stacked_lstm.graph
        for plan in (
            native_plan(graph),
            cudnn_plan(graph),
            xla_plan(graph, device),
        ):
            expected, covered = self._covered_compute_nodes(graph, plan)
            assert expected == covered, plan.label

    def test_every_plan_lowers_and_runs(self, tiny_gnmt, device):
        report = AstraSession(tiny_gnmt, features="FKS", seed=0).optimize()
        result = Executor(tiny_gnmt.graph, device).run(report.astra.best_plan)
        assert result.total_time_us > 0


class TestDevicePortability:
    """Section 6.7: as hardware evolves, the same adaptation machinery
    applies -- no cost-model rewrite needed."""

    def test_v100_optimization_works(self, tiny_sublstm):
        report = AstraSession(tiny_sublstm, device=V100, features="FK", seed=0).optimize()
        assert report.speedup_over_native >= 1.0

    def test_faster_device_faster_minibatch(self, tiny_sublstm):
        p100 = AstraSession(tiny_sublstm, device=P100, features="F", seed=0).optimize()
        v100 = AstraSession(tiny_sublstm, device=V100, features="F", seed=0).optimize()
        assert v100.best_time_us < p100.best_time_us

    def test_adaptation_is_device_specific(self):
        """The chosen configuration may differ between devices -- that is
        the point of measuring instead of modelling."""
        import repro.models.sublstm as SU
        from repro.models import build_sublstm

        model = build_sublstm(SU.DEFAULT_CONFIG.scaled(batch_size=32, seq_len=4))
        a = AstraSession(model, device=P100, features="FK", seed=0).optimize()
        b = AstraSession(model, device=V100, features="FK", seed=0).optimize()
        # both valid; identical assignments are possible but the reports
        # must at least reflect their own device's timings
        assert a.best_time_us != b.best_time_us


class TestWorkConservation:
    def test_exploration_minibatches_do_useful_work(self, small_sublstm):
        """Every exploration config covers the full training computation
        (work-conserving exploration, section 4.2)."""
        session = AstraSession(small_sublstm, features="F", seed=0)
        enum = session.wirer.enumerator
        strategy = enum.strategies[0]
        tree = enum.build_fk_tree(strategy)
        tree.initialize()
        free = {"reshape", "fill"}
        expected = {
            n.node_id for n in small_sublstm.graph.compute_nodes()
            if n.op.name not in free
        }
        for _ in range(3):
            built = enum.build_plan(strategy, tree.assignment())
            covered = {
                nid for u in built.plan.units for nid in u.node_ids
                if not small_sublstm.graph.node(nid).is_leaf
            }
            assert covered == expected
            if not tree.advance(session.wirer.index, ("t",)):
                break
