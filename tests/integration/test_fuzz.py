"""Pipeline fuzzing: random traced graphs through the whole stack.

A random-program generator builds arbitrary (but valid) tensor programs;
every stage -- fusion analysis, enumeration, planning, lowering,
execution, full optimization -- must handle them without error and
without ever producing a plan slower than native.  This is the
enumerator's real job description: the paper's long-tail models are
precisely programs nobody anticipated.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import AstraSession
from repro.baselines import run_native, run_xla
from repro.core import analyse_fusion
from repro.core.fusion import resolve_static_conflicts
from repro.gpu import P100
from repro.ir import Interpreter, Tracer, backward, random_bindings
from repro.obs.metrics import MetricsRegistry
from tests.integration.fuzz_utils import random_program


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_fusion_analysis_total(seed):
    """Fusion analysis covers every GEMM exactly once on random programs."""
    tr, _loss = random_program(seed)
    analysis = resolve_static_conflicts(analyse_fusion(tr.graph))
    seen: set[int] = set()
    for group in analysis.groups:
        for member in group.members:
            for mm in member.mm_ids:
                assert mm not in seen
                seen.add(mm)
    for member in analysis.singletons:
        for mm in member.mm_ids:
            assert mm not in seen
            seen.add(mm)
    assert seen == {n.node_id for n in tr.graph.gemm_nodes()}


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_full_optimization(seed):
    """The whole stack runs on arbitrary programs, never loses to native,
    and every configuration the exploration tries passes the schedule
    validator (``validate=True`` raises on the first violation)."""
    tr, loss = random_program(seed)

    metrics = MetricsRegistry()
    report = AstraSession(
        tr.graph, features="FK", seed=0, validate=True, metrics=metrics
    ).optimize()
    assert report.speedup_over_native >= 1.0
    snap = metrics.snapshot()
    assert snap["check.schedules_validated"]["value"] > 0
    assert not [k for k in snap if k.startswith("check.violations.")]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_baselines_agree_on_coverage(seed):
    """Native and XLA plans execute the same computation on random
    programs (plan-level value preservation)."""
    tr, _loss = random_program(seed, size=8)
    native = run_native(tr.graph, P100)
    xla = run_xla(tr.graph, P100)
    assert native.total_time_us > 0 and xla.total_time_us > 0


def _random_stream_schedule(seed, streams=3):
    """Lower a random program under a random (but event-synchronized)
    stream assignment."""
    from repro.runtime import Dispatcher, ExecutionPlan, build_units

    tr, _loss = random_program(seed, size=10)
    rng = np.random.default_rng(seed + 1)
    units = build_units(tr.graph)
    plan = ExecutionPlan(
        units=units,
        stream_of={u.unit_id: int(rng.integers(0, streams)) for u in units},
        profile=False,
        label=f"fuzz{seed}/streams",
    )
    return tr.graph, plan, Dispatcher(tr.graph).lower(plan)


def _work_item_times(lowered, result):
    """item index -> (start, end); simulator records are 1:1 with
    LaunchItems in dispatch order."""
    from repro.gpu.streams import LaunchItem

    times = {}
    record = iter(result.records)
    for idx, item in enumerate(lowered.items):
        if isinstance(item, LaunchItem):
            rec = next(record)
            times[idx] = (rec.start_time, rec.end_time)
    return times


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_random_streams_validate_and_order_soundly(seed):
    """Dispatcher-lowered schedules under arbitrary stream assignments are
    always clean, and the static happens-before claim is *sound*: whenever
    the validator says "i completes before j starts", the simulated
    timestamps agree."""
    from repro.check import HappensBefore, validate_schedule
    from repro.gpu.streams import StreamSimulator

    _graph, _plan, lowered = _random_stream_schedule(seed)
    report = validate_schedule(lowered)
    assert report.ok, report.summary()

    result = StreamSimulator(P100).run(lowered.items)
    times = _work_item_times(lowered, result)
    hb = HappensBefore(lowered.items, lowered.item_units)
    indices = sorted(times)
    for i in indices:
        for j in indices:
            if i != j and hb.ordered(i, j):
                assert times[i][1] <= times[j][0] + 1e-6, (
                    f"validator claims item {i} finishes before {j} starts, "
                    f"but simulated times are {times[i]} vs {times[j]}"
                )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_dropped_waits_never_hide_a_dynamic_race(seed):
    """Mutation oracle over the fuzzer: strip every wait-event from a
    random multi-stream schedule, then check the validator against the
    simulator -- any dependency edge that *dynamically* overlaps in the
    mutant must be reported as a static raw-race."""
    from dataclasses import replace

    from repro.check import RAW_RACE, dependency_edges, unit_item_spans, validate_schedule
    from repro.gpu.streams import LaunchItem, StreamSimulator

    graph, plan, lowered = _random_stream_schedule(seed)
    for idx, item in enumerate(lowered.items):
        if isinstance(item, LaunchItem) and item.waits:
            lowered.items[idx] = replace(item, waits=())

    report = validate_schedule(lowered)
    flagged = {
        frozenset(v.unit_ids)
        for v in report.violations
        if v.kind == RAW_RACE
    }

    result = StreamSimulator(P100).run(lowered.items)
    times = _work_item_times(lowered, result)
    spans = unit_item_spans(lowered.item_units)
    for (producer, consumer) in dependency_edges(graph, plan):
        p_span, c_span = spans.get(producer), spans.get(consumer)
        if p_span is None or c_span is None:
            continue
        if p_span[1] not in times or c_span[0] not in times:
            continue  # host-compute endpoints carry no kernel record
        p_end = times[p_span[1]][1]
        c_start = times[c_span[0]][0]
        if c_start < p_end - 1e-6:  # consumer observably overtook producer
            assert frozenset((producer, consumer)) in flagged, (
                f"dynamic race {producer}->{consumer} "
                f"(producer ends {p_end}, consumer starts {c_start}) "
                "not reported by the validator"
            )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_interpreter_finite(seed):
    """Random programs evaluate to finite values (the loss scaling keeps
    the chain numerically tame)."""
    tr, loss = random_program(seed, size=8)
    values = Interpreter(tr.graph).run(random_bindings(tr.graph, seed=seed))
    assert np.isfinite(values[loss.node.node_id]).all()
