"""Pipeline fuzzing: random traced graphs through the whole stack.

A random-program generator builds arbitrary (but valid) tensor programs;
every stage -- fusion analysis, enumeration, planning, lowering,
execution, full optimization -- must handle them without error and
without ever producing a plan slower than native.  This is the
enumerator's real job description: the paper's long-tail models are
precisely programs nobody anticipated.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import AstraSession
from repro.baselines import run_native, run_xla
from repro.core import analyse_fusion
from repro.core.fusion import resolve_static_conflicts
from repro.gpu import P100
from repro.ir import Interpreter, Tracer, backward, random_bindings
from tests.integration.fuzz_utils import random_program


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_fusion_analysis_total(seed):
    """Fusion analysis covers every GEMM exactly once on random programs."""
    tr, _loss = random_program(seed)
    analysis = resolve_static_conflicts(analyse_fusion(tr.graph))
    seen: set[int] = set()
    for group in analysis.groups:
        for member in group.members:
            for mm in member.mm_ids:
                assert mm not in seen
                seen.add(mm)
    for member in analysis.singletons:
        for mm in member.mm_ids:
            assert mm not in seen
            seen.add(mm)
    assert seen == {n.node_id for n in tr.graph.gemm_nodes()}


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_full_optimization(seed):
    """The whole stack runs on arbitrary programs and never loses to
    native."""
    tr, loss = random_program(seed)

    class _Model:
        graph = tr.graph

    from repro.models.cells import TracedModel

    report = AstraSession(tr.graph, features="FK", seed=0).optimize()
    assert report.speedup_over_native >= 1.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_baselines_agree_on_coverage(seed):
    """Native and XLA plans execute the same computation on random
    programs (plan-level value preservation)."""
    tr, _loss = random_program(seed, size=8)
    native = run_native(tr.graph, P100)
    xla = run_xla(tr.graph, P100)
    assert native.total_time_us > 0 and xla.total_time_us > 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_interpreter_finite(seed):
    """Random programs evaluate to finite values (the loss scaling keeps
    the chain numerically tame)."""
    tr, loss = random_program(seed, size=8)
    values = Interpreter(tr.graph).run(random_bindings(tr.graph, seed=seed))
    assert np.isfinite(values[loss.node.node_id]).all()
