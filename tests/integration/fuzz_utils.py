"""Shared random-program generator for fuzz/property tests."""

from __future__ import annotations

import numpy as np

from repro.ir import Tracer, backward


def random_program(seed: int, size: int = 12) -> tuple[Tracer, object]:
    """Generate a random small tensor program ending in a scalar loss.

    Operations are drawn to exercise the fusion patterns: matmuls off a
    shared pool of values (common-argument opportunities), adds of matmul
    pairs (ladder opportunities), elementwise chains, reductions.
    """
    rng = np.random.default_rng(seed)
    tr = Tracer(f"fuzz{seed}")
    dims = [int(rng.choice([4, 8, 16]))]
    pool = [tr.input((4, dims[0]), label="x0")]

    with tr.scope("fuzz/step0"):
        for i in range(size):
            choice = rng.integers(0, 5)
            src = pool[rng.integers(len(pool))]
            if choice == 0:  # matmul with a fresh param
                out_dim = int(rng.choice([4, 8, 16]))
                w = tr.param((src.shape[-1], out_dim))
                pool.append(tr.matmul(src, w))
            elif choice == 1:  # ladder: mm + mm with matching shapes
                out_dim = int(rng.choice([4, 8]))
                w1 = tr.param((src.shape[-1], out_dim))
                other = pool[rng.integers(len(pool))]
                w2 = tr.param((other.shape[-1], out_dim))
                pool.append(tr.add(tr.matmul(src, w1), tr.matmul(other, w2)))
            elif choice == 2:  # elementwise chain
                pool.append(tr.sigmoid(tr.tanh(src)))
            elif choice == 3 and src.shape == pool[0].shape:
                pool.append(tr.mul(src, pool[0]))
            else:  # scaled copy keeps the pool growing
                pool.append(tr.scale(src, float(rng.uniform(0.5, 2.0))))

    total = None
    for value in pool[-3:]:
        part = tr.reduce_sum(value)
        total = part if total is None else tr.add(total, part)
    loss = tr.scale(total, 1e-3)
    tr.output(loss)
    backward(tr, loss)
    tr.graph.validate()
    return tr, loss
