"""Cross-layer property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AstraFeatures, Enumerator
from repro.gpu import P100, GemmLaunch, HostSyncItem, LaunchItem, StreamSimulator
from repro.ir import Interpreter, Tracer, backward, random_bindings
from repro.models import ModelConfig, build_sublstm
from repro.runtime import Dispatcher, Executor


@settings(max_examples=10, deadline=None)
@given(
    batch=st.sampled_from([2, 4, 8]),
    seq=st.integers(2, 4),
    hidden=st.sampled_from([16, 32]),
)
def test_property_any_shape_optimizes(batch, seq, hidden):
    """Astra must handle any (reasonable) model shape without error and
    never produce a plan slower than native."""
    config = ModelConfig(
        batch_size=batch, seq_len=seq, hidden_size=hidden,
        embed_size=hidden, vocab_size=30,
    )
    model = build_sublstm(config)
    from repro import AstraSession

    report = AstraSession(model, features="F", seed=0).optimize()
    assert report.speedup_over_native >= 1.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50))
def test_property_plans_value_preserving(seed):
    """Section 6.7: all optimizations are value-preserving.  Whatever the
    fusion/kernel assignment, the covered computation is identical --
    checked by evaluating the graph with the interpreter and confirming
    the plan only re-partitions the same node set."""
    config = ModelConfig(batch_size=2, seq_len=2, hidden_size=16,
                         embed_size=16, vocab_size=20)
    model = build_sublstm(config)
    enum = Enumerator(model.graph, P100, AstraFeatures.preset("FK"))
    strategy = enum.strategies[0]
    tree = enum.build_fk_tree(strategy)
    tree.initialize()

    rng = np.random.default_rng(seed)
    # random assignment over the tree's variables
    assignment = {}
    for var in tree.variables():
        assignment[var.name] = var.choices[rng.integers(len(var.choices))]
    built = enum.build_plan(strategy, assignment)
    built.plan.validate_covering()
    Dispatcher(model.graph).lower(built.plan)

    free = {"reshape", "fill"}
    expected = {
        n.node_id for n in model.graph.compute_nodes() if n.op.name not in free
    }
    covered = {
        nid for u in built.plan.units for nid in u.node_ids
        if not model.graph.node(nid).is_leaf
    }
    assert covered == expected

    # and the underlying values are what the model defines (plan-independent)
    bindings = random_bindings(model.graph, seed=seed, int_high=20)
    loss = Interpreter(model.graph).run(bindings)[model.loss.node.node_id]
    assert np.isfinite(loss).all()


@settings(max_examples=20, deadline=None)
@given(
    n_kernels=st.integers(1, 8),
    streams=st.lists(st.integers(0, 2), min_size=8, max_size=8),
    sizes=st.lists(st.sampled_from([16, 64, 128, 256]), min_size=8, max_size=8),
)
def test_property_stream_schedules_consistent(n_kernels, streams, sizes):
    """DES invariants under arbitrary stream assignments: FIFO per stream,
    total time bounds, determinism."""
    items = [
        LaunchItem(GemmLaunch(sizes[i], 128, 128, "cublas"), streams[i])
        for i in range(n_kernels)
    ] + [HostSyncItem()]
    r1 = StreamSimulator(P100).run(items)
    r2 = StreamSimulator(P100).run(items)
    assert r1.total_time_us == r2.total_time_us

    # FIFO within each stream
    by_stream: dict[int, list] = {}
    for rec in r1.records:
        by_stream.setdefault(rec.stream, []).append(rec)
    for recs in by_stream.values():
        for a, b in zip(recs, recs[1:]):
            assert b.start_time >= a.end_time - 1e-6

    # total time at least the longest kernel, at most the serial sum + cpu
    durations = [rec.duration for rec in r1.records]
    assert r1.total_time_us >= max(durations) - 1e-6
    serial = sum(durations) + len(items) * P100.launch_overhead_us + 10
    assert r1.total_time_us <= serial + 1e-6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_executor_times_consistent(seed):
    """Unit times reported by the executor always sum to <= wall time
    x num_streams, and are individually positive."""
    config = ModelConfig(batch_size=2, seq_len=2, hidden_size=16,
                         embed_size=16, vocab_size=20)
    model = build_sublstm(config)
    from repro.baselines.native import native_plan

    plan = native_plan(model.graph)
    plan.profile = True
    result = Executor(model.graph, P100).run(plan)
    assert all(t > 0 for t in result.unit_times.values())
    assert sum(result.unit_times.values()) <= result.total_time_us + 1e-6


@settings(max_examples=15, deadline=None)
@given(
    m=st.integers(1, 16), k=st.integers(4, 64), n=st.integers(4, 64),
    seed=st.integers(0, 1000),
)
def test_property_autodiff_linear_in_seed(m, k, n, seed):
    """Gradient of sum(x @ W) wrt W is x^T @ ones -- closed form check on
    random shapes (complements the finite-difference tests)."""
    tr = Tracer()
    x = tr.input((m, k))
    w = tr.param((k, n), label="w")
    loss = tr.reduce_sum(tr.matmul(x, w))
    grads = backward(tr, loss, wrt=[w])
    bindings = random_bindings(tr.graph, seed=seed)
    values = Interpreter(tr.graph).run(bindings)
    grad = values[grads[w.node.node_id].node.node_id]
    expected = bindings[x.node.node_id].T @ np.ones((m, n), dtype=np.float32)
    np.testing.assert_allclose(grad, expected, rtol=1e-4)
