"""Oracle tests: the wirer's pruned exploration finds the global optimum.

On a model small enough to brute-force, enumerate the *entire* cartesian
product of the FK update tree's choices, execute every configuration end
to end, and compare against what the custom-wirer converged to with its
parallel (additive) exploration.  Section 4.5.1's soundness claim is that
fine-grained profiling makes the per-variable choices independent, so the
additive search loses nothing -- here we check exactly that.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import AstraFeatures, CustomWirer, Enumerator
from repro.gpu import P100
from repro.ir import Tracer, backward
from repro.runtime import Executor


def tiny_two_group_model():
    """Two independent 4-GEMM common-argument groups plus a standalone
    GEMM: small enough that the full FK product is enumerable."""
    tr = Tracer("oracle")
    x = tr.input((8, 64), label="x")
    y = tr.input((8, 96), label="y")
    with tr.scope("a/step0"):
        outs_a = [tr.matmul(x, tr.param((64, 128))) for _ in range(4)]
    with tr.scope("b/step0"):
        outs_b = [tr.matmul(y, tr.param((96, 128))) for _ in range(4)]
    z = tr.matmul(tr.input((8, 256)), tr.param((256, 64)))
    total = None
    for out in outs_a + outs_b + [z]:
        part = tr.reduce_sum(tr.tanh(out))
        total = part if total is None else tr.add(total, part)
    loss = tr.scale(total, 1e-3)
    tr.output(loss)
    # forward-only: keeps the brute-force space at a few hundred configs
    return tr.graph


@pytest.fixture(scope="module")
def oracle_setup():
    graph = tiny_two_group_model()
    features = AstraFeatures.preset("FK")
    enum = Enumerator(graph, P100, features)
    strategy = enum.strategies[0]
    tree = enum.build_fk_tree(strategy)
    variables = list(tree.variables())
    # keep the brute force tractable
    space = 1
    for var in variables:
        space *= len(var.choices)
    assert space <= 5000, f"model too big to brute-force ({space})"
    return graph, enum, strategy, variables


class TestOracleOptimality:
    def test_wirer_matches_brute_force(self, oracle_setup):
        graph, enum, strategy, variables = oracle_setup
        executor = Executor(graph, P100)

        best_time = float("inf")
        for combo in itertools.product(*(v.choices for v in variables)):
            assignment = {v.name: c for v, c in zip(variables, combo)}
            built = enum.build_plan(strategy, assignment, profile=False)
            time = executor.run(built.plan).total_time_us
            best_time = min(best_time, time)

        wirer = CustomWirer(graph, P100, AstraFeatures.preset("FK"), seed=0)
        report = wirer.optimize()
        # the additive exploration must find the global optimum (modulo
        # the profiling-off final run measured identically here)
        assert report.best_time_us == pytest.approx(best_time, rel=1e-6)

    def test_exploration_far_cheaper_than_brute_force(self, oracle_setup):
        graph, enum, strategy, variables = oracle_setup
        space = 1
        for var in variables:
            space *= len(var.choices)
        wirer = CustomWirer(graph, P100, AstraFeatures.preset("FK"), seed=0)
        report = wirer.optimize()
        assert report.configs_explored < space / 5
