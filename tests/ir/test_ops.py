"""Unit tests for operator shape inference, cost summaries and numerics."""

import numpy as np
import pytest

from repro.ir import ops
from repro.ir.tensor import TensorSpec


def spec(*shape, dtype="fp32"):
    return TensorSpec(tuple(shape), dtype)


class TestMatMul:
    def test_plain(self):
        op = ops.MatMul()
        assert op.infer_shape([spec(4, 8), spec(8, 6)]).shape == (4, 6)
        assert op.gemm_dims([spec(4, 8), spec(8, 6)]) == (4, 8, 6)

    @pytest.mark.parametrize("ta,tb,a,b,out", [
        (False, False, (4, 8), (8, 6), (4, 6)),
        (True, False, (8, 4), (8, 6), (4, 6)),
        (False, True, (4, 8), (6, 8), (4, 6)),
        (True, True, (8, 4), (6, 8), (4, 6)),
    ])
    def test_transpose_flags(self, ta, tb, a, b, out):
        op = ops.MatMul(ta, tb)
        assert op.infer_shape([spec(*a), spec(*b)]).shape == out
        rng = np.random.default_rng(0)
        va, vb = rng.standard_normal(a), rng.standard_normal(b)
        expect = (va.T if ta else va) @ (vb.T if tb else vb)
        np.testing.assert_allclose(op.evaluate(va, vb), expect)

    def test_flops_uses_effective_dims(self):
        op = ops.MatMul(transpose_b=True)
        out = op.infer_shape([spec(4, 8), spec(6, 8)])
        assert op.flops([spec(4, 8), spec(6, 8)], out) == 2 * 4 * 8 * 6

    def test_signature_includes_flags(self):
        assert ops.MatMul().signature() != ops.MatMul(transpose_b=True).signature()


class TestElementwise:
    @pytest.mark.parametrize("op_cls,fn", [
        (ops.Add, lambda a, b: a + b),
        (ops.Sub, lambda a, b: a - b),
        (ops.Mul, lambda a, b: a * b),
        (ops.Div, lambda a, b: a / b),
    ])
    def test_binary_numerics(self, op_cls, fn):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((3, 5))
        b = rng.standard_normal((3, 5)) + 2.0
        np.testing.assert_allclose(op_cls().evaluate(a, b), fn(a, b))

    @pytest.mark.parametrize("op_cls,fn", [
        (ops.Sigmoid, lambda x: 1 / (1 + np.exp(-x))),
        (ops.Tanh, np.tanh),
        (ops.Relu, lambda x: np.maximum(x, 0)),
        (ops.Exp, np.exp),
        (ops.Step, lambda x: (x > 0).astype(x.dtype)),
    ])
    def test_unary_numerics(self, op_cls, fn):
        x = np.linspace(-3, 3, 24).reshape(4, 6)
        np.testing.assert_allclose(op_cls().evaluate(x), fn(x), rtol=1e-6)

    def test_unary_preserves_shape(self):
        assert ops.Sigmoid().infer_shape([spec(4, 6)]).shape == (4, 6)

    def test_scale_and_add_scalar(self):
        x = np.ones((2, 2))
        np.testing.assert_allclose(ops.Scale(2.5).evaluate(x), 2.5 * x)
        np.testing.assert_allclose(ops.AddScalar(-1.0).evaluate(x), x - 1.0)

    def test_scale_signature_distinguishes_factor(self):
        assert ops.Scale(2.0).signature() != ops.Scale(3.0).signature()

    def test_binary_arity_check(self):
        with pytest.raises(ValueError):
            ops.Add().infer_shape([spec(2, 2)])


class TestReductions:
    def test_reduce_sum_all(self):
        op = ops.ReduceSum()
        assert op.infer_shape([spec(3, 4)]).shape == (1,)
        np.testing.assert_allclose(op.evaluate(np.ones((3, 4))), [12.0])

    def test_reduce_sum_axis(self):
        op = ops.ReduceSum(axis=0)
        assert op.infer_shape([spec(3, 4)]).shape == (4,)
        np.testing.assert_allclose(op.evaluate(np.ones((3, 4))), np.full(4, 3.0))

    def test_reduce_sum_keepdims(self):
        op = ops.ReduceSum(axis=-1, keepdims=True)
        assert op.infer_shape([spec(3, 4)]).shape == (3, 1)
        np.testing.assert_allclose(op.evaluate(np.ones((3, 4))), np.full((3, 1), 4.0))

    def test_reduce_to_scalarish_shape(self):
        op = ops.ReduceSum(axis=0)
        assert op.infer_shape([spec(3)]).shape == (1,)

    def test_softmax_rows_sum_to_one(self):
        out = ops.Softmax().evaluate(np.random.default_rng(2).standard_normal((5, 7)))
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5), rtol=1e-6)
        assert (out > 0).all()

    def test_softmax_stability_large_inputs(self):
        out = ops.Softmax().evaluate(np.array([[1e4, 1e4 + 1.0]]))
        assert np.isfinite(out).all()


class TestEmbedding:
    def test_lookup(self):
        table = np.arange(12.0).reshape(6, 2)
        idx = np.array([0, 5, 3])
        out = ops.Embedding().evaluate(table, idx)
        np.testing.assert_allclose(out, table[[0, 5, 3]])

    def test_shape_inference(self):
        out = ops.Embedding().infer_shape([spec(50, 8), spec(4, dtype="int64")])
        assert out.shape == (4, 8)

    def test_rejects_float_indices(self):
        with pytest.raises(ValueError):
            ops.Embedding().infer_shape([spec(50, 8), spec(4)])

    def test_grad_scatter_adds_duplicates(self):
        op = ops.EmbeddingGrad(vocab_size=6)
        idx = np.array([1, 1, 3])
        grad = np.ones((3, 2))
        out = op.evaluate(idx, grad)
        np.testing.assert_allclose(out[1], [2.0, 2.0])
        np.testing.assert_allclose(out[3], [1.0, 1.0])
        np.testing.assert_allclose(out[0], [0.0, 0.0])

    def test_grad_shape(self):
        op = ops.EmbeddingGrad(vocab_size=9)
        assert op.infer_shape([spec(4, dtype="int64"), spec(4, 3)]).shape == (9, 3)


class TestMovement:
    def test_concat(self):
        op = ops.Concat(axis=1)
        assert op.infer_shape([spec(2, 3), spec(2, 5)]).shape == (2, 8)
        out = op.evaluate(np.ones((2, 3)), np.zeros((2, 5)))
        assert out.shape == (2, 8)

    def test_concat_mismatch(self):
        with pytest.raises(ValueError):
            ops.Concat(axis=1).infer_shape([spec(2, 3), spec(3, 5)])

    def test_slice(self):
        op = ops.Slice(axis=1, start=2, stop=5)
        assert op.infer_shape([spec(2, 8)]).shape == (2, 3)
        out = op.evaluate(np.arange(16.0).reshape(2, 8))
        np.testing.assert_allclose(out, np.arange(16.0).reshape(2, 8)[:, 2:5])

    def test_slice_bounds_checked(self):
        with pytest.raises(ValueError):
            ops.Slice(axis=1, start=2, stop=9).infer_shape([spec(2, 8)])
        with pytest.raises(ValueError):
            ops.Slice(axis=0, start=3, stop=3)

    def test_pad_zero_inverse_of_slice(self):
        x = np.arange(6.0).reshape(2, 3)
        padded = ops.PadZero(axis=1, start=2, total=8).evaluate(x)
        assert padded.shape == (2, 8)
        np.testing.assert_allclose(padded[:, 2:5], x)
        np.testing.assert_allclose(padded[:, :2], 0)

    def test_transpose(self):
        assert ops.Transpose().infer_shape([spec(2, 5)]).shape == (5, 2)

    def test_reshape(self):
        op = ops.Reshape((6,))
        assert op.infer_shape([spec(2, 3)]).shape == (6,)
        with pytest.raises(ValueError):
            ops.Reshape((7,)).infer_shape([spec(2, 3)])

    def test_reshape_is_free(self):
        op = ops.Reshape((6,))
        out = op.infer_shape([spec(2, 3)])
        assert op.bytes_accessed([spec(2, 3)], out) == 0
        assert op.flops([spec(2, 3)], out) == 0


class TestFill:
    def test_fill(self):
        op = ops.Fill(spec(2, 3), 0.5)
        assert op.infer_shape([]).shape == (2, 3)
        np.testing.assert_allclose(op.evaluate(), np.full((2, 3), 0.5))

    def test_fill_rejects_inputs(self):
        with pytest.raises(ValueError):
            ops.Fill(spec(2), 1.0).infer_shape([spec(2)])
