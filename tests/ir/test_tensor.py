"""Unit tests for TensorSpec and shape arithmetic."""

import pytest

from repro.ir.tensor import (
    TensorSpec,
    broadcast_result,
    matmul_flops,
    matmul_result,
)


class TestTensorSpec:
    def test_basic_properties(self):
        spec = TensorSpec((4, 8))
        assert spec.rank == 2
        assert spec.num_elements == 32
        assert spec.size_bytes == 128  # fp32
        assert spec.dtype == "fp32"

    def test_dtype_sizes(self):
        assert TensorSpec((2,), "fp16").size_bytes == 4
        assert TensorSpec((2,), "fp64").size_bytes == 16
        assert TensorSpec((2,), "int64").size_bytes == 16

    def test_shape_coerced_to_tuple(self):
        spec = TensorSpec([3, 4])  # type: ignore[arg-type]
        assert spec.shape == (3, 4)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            TensorSpec((0, 4))
        with pytest.raises(ValueError):
            TensorSpec((-1,))

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            TensorSpec((2,), "bf16")

    def test_hashable_for_profile_keys(self):
        assert hash(TensorSpec((2, 3))) == hash(TensorSpec((2, 3)))
        assert TensorSpec((2, 3)) == TensorSpec((2, 3))
        assert TensorSpec((2, 3)) != TensorSpec((3, 2))

    def test_transposed(self):
        assert TensorSpec((2, 5)).transposed().shape == (5, 2)

    def test_transposed_requires_rank2(self):
        with pytest.raises(ValueError):
            TensorSpec((2, 3, 4)).transposed()

    def test_with_shape_preserves_dtype(self):
        spec = TensorSpec((2, 3), "fp16").with_shape((6,))
        assert spec.shape == (6,)
        assert spec.dtype == "fp16"

    def test_str_compact(self):
        assert str(TensorSpec((4, 8))) == "4x8:fp32"


class TestMatmul:
    def test_result_shape(self):
        out = matmul_result(TensorSpec((4, 8)), TensorSpec((8, 16)))
        assert out.shape == (4, 16)

    def test_inner_dim_mismatch(self):
        with pytest.raises(ValueError):
            matmul_result(TensorSpec((4, 8)), TensorSpec((9, 16)))

    def test_dtype_mismatch(self):
        with pytest.raises(ValueError):
            matmul_result(TensorSpec((4, 8)), TensorSpec((8, 16), "fp16"))

    def test_rank_check(self):
        with pytest.raises(ValueError):
            matmul_result(TensorSpec((4,)), TensorSpec((4, 2)))

    def test_flops_convention(self):
        # 2*M*K*N multiply-adds
        assert matmul_flops(TensorSpec((4, 8)), TensorSpec((8, 16))) == 2 * 4 * 8 * 16


class TestBroadcast:
    def test_identical_shapes(self):
        out = broadcast_result(TensorSpec((4, 8)), TensorSpec((4, 8)))
        assert out.shape == (4, 8)

    def test_bias_broadcast(self):
        out = broadcast_result(TensorSpec((4, 8)), TensorSpec((8,)))
        assert out.shape == (4, 8)

    def test_keepdims_broadcast(self):
        out = broadcast_result(TensorSpec((4, 8)), TensorSpec((4, 1)))
        assert out.shape == (4, 8)

    def test_scalar_tensor_broadcast(self):
        out = broadcast_result(TensorSpec((1,)), TensorSpec((4, 8)))
        assert out.shape == (4, 8)

    def test_incompatible(self):
        with pytest.raises(ValueError):
            broadcast_result(TensorSpec((4, 8)), TensorSpec((5, 8)))

    def test_dtype_mismatch(self):
        with pytest.raises(ValueError):
            broadcast_result(TensorSpec((4,)), TensorSpec((4,), "fp16"))
