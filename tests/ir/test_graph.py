"""Unit tests for the graph container: topology, provenance, validation."""

import pytest

from repro.ir import Graph, Tracer, ops
from repro.ir.tensor import TensorSpec


def build_chain():
    tr = Tracer("chain")
    x = tr.input((2, 4), label="x")
    w = tr.param((4, 4), label="w")
    y = tr.matmul(x, w)
    z = tr.sigmoid(y)
    tr.output(z)
    return tr, x, w, y, z


class TestConstruction:
    def test_leaves_and_roles(self):
        tr, x, w, y, z = build_chain()
        g = tr.graph
        assert [n.label for n in g.inputs()] == ["x"]
        assert [n.label for n in g.params()] == ["w"]
        assert x.node.is_leaf and w.node.is_leaf
        assert not y.node.is_leaf

    def test_topological_ids(self):
        tr, x, w, y, z = build_chain()
        assert x.node.node_id < y.node.node_id < z.node.node_id

    def test_consumers_maintained(self):
        tr, x, w, y, z = build_chain()
        g = tr.graph
        assert g.consumers(x.node.node_id) == [y.node.node_id]
        assert g.consumers(y.node.node_id) == [z.node.node_id]
        assert g.consumers(z.node.node_id) == []

    def test_outputs_marked_once(self):
        tr, *_rest, z = build_chain()
        tr.output(z)
        assert tr.graph.outputs.count(z.node.node_id) == 1

    def test_foreign_node_rejected(self):
        tr1, *_1, z1 = build_chain()
        tr2, *_2, z2 = build_chain()
        with pytest.raises(ValueError):
            tr1.graph.add_op(ops.Sigmoid(), [z2.node])

    def test_bad_leaf_role(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_input(TensorSpec((2,)), role="compute")


class TestQueries:
    def test_gemm_nodes(self, tiny_sublstm):
        g = tiny_sublstm.graph
        gemms = g.gemm_nodes()
        assert gemms and all(n.kind == "gemm" for n in gemms)

    def test_total_flops_positive(self, tiny_scrnn):
        assert tiny_scrnn.graph.total_flops() > 0

    def test_depends_on_direct(self):
        tr, x, w, y, z = build_chain()
        g = tr.graph
        assert g.depends_on(z.node.node_id, x.node.node_id)
        assert g.depends_on(z.node.node_id, y.node.node_id)
        assert not g.depends_on(x.node.node_id, z.node.node_id)

    def test_depends_on_self(self):
        tr, x, *_r = build_chain()
        assert tr.graph.depends_on(x.node.node_id, x.node.node_id)

    def test_depends_on_unrelated(self):
        tr = Tracer("par")
        a = tr.input((2, 2))
        b = tr.input((2, 2))
        c = tr.sigmoid(a)
        d = tr.tanh(b)
        assert not tr.graph.depends_on(d.node.node_id, c.node.node_id)

    def test_dump_lists_nodes(self):
        tr, *_r = build_chain()
        dump = tr.graph.dump()
        assert "mm" in dump and "sigmoid" in dump

    def test_dump_limit(self):
        tr, *_r = build_chain()
        dump = tr.graph.dump(limit=1)
        assert "more nodes" in dump


class TestValidation:
    def test_validate_accepts_models(self, all_tiny_models):
        for model in all_tiny_models:
            model.graph.validate()

    def test_validate_catches_bad_spec(self):
        tr, *_r, z = build_chain()
        node = z.node
        object.__setattr__(node, "spec", TensorSpec((9, 9))) if False else None
        node.spec = TensorSpec((9, 9))
        with pytest.raises(ValueError):
            tr.graph.validate()


class TestProvenance:
    def test_scopes_recorded(self, tiny_sublstm):
        scopes = {n.scope for n in tiny_sublstm.graph.compute_nodes()}
        assert any(s.startswith("layer0/step") for s in scopes)

    def test_pass_tags(self, tiny_sublstm):
        tags = {n.pass_tag for n in tiny_sublstm.graph.compute_nodes()}
        assert tags == {"forward", "backward"}

    def test_backward_nodes_inherit_forward_scope(self, tiny_sublstm):
        g = tiny_sublstm.graph
        bwd_scopes = {n.scope for n in g.compute_nodes() if n.pass_tag == "backward"}
        assert any(s.startswith("layer0/step") for s in bwd_scopes)
