"""Tests for the DCE / CSE graph cleanup passes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import Interpreter, Tracer, backward, random_bindings
from repro.ir.passes import (
    common_subexpression_elimination,
    eliminate_dead_code,
    simplify,
)


def build_graph_with_dead_branch():
    tr = Tracer("dce")
    x = tr.input((4, 8), label="x")
    w = tr.param((8, 8), label="w")
    live = tr.sigmoid(tr.matmul(x, w))
    dead = tr.tanh(tr.matmul(live, w))  # never marked as output
    more_dead = tr.relu(dead)
    loss = tr.reduce_sum(live)
    tr.output(loss)
    return tr, loss, (dead, more_dead)


class TestDce:
    def test_dead_nodes_removed(self):
        tr, loss, dead_nodes = build_graph_with_dead_branch()
        result = eliminate_dead_code(tr.graph)
        assert len(result.graph) < len(tr.graph)
        for var in dead_nodes:
            assert var.node.node_id not in result.node_map

    def test_live_nodes_kept_and_mapped(self):
        tr, loss, _dead = build_graph_with_dead_branch()
        result = eliminate_dead_code(tr.graph)
        assert loss.node.node_id in result.node_map
        result.graph.validate()

    def test_outputs_preserved(self):
        tr, loss, _dead = build_graph_with_dead_branch()
        result = eliminate_dead_code(tr.graph)
        assert result.graph.outputs == [result.mapped(loss.node.node_id)]

    def test_values_preserved(self):
        tr, loss, _dead = build_graph_with_dead_branch()
        result = eliminate_dead_code(tr.graph)
        bindings = random_bindings(tr.graph, seed=3)
        original = Interpreter(tr.graph).run(bindings)[loss.node.node_id]
        new_bindings = {
            result.mapped(nid): value
            for nid, value in bindings.items()
            if nid in result.node_map
        }
        rewritten = Interpreter(result.graph).run(new_bindings)[
            result.mapped(loss.node.node_id)
        ]
        np.testing.assert_allclose(original, rewritten)

    def test_params_kept_even_if_unused(self):
        tr = Tracer()
        x = tr.input((2, 2))
        unused = tr.param((4, 4), label="unused")
        tr.output(tr.reduce_sum(x))
        result = eliminate_dead_code(tr.graph)
        labels = [n.label for n in result.graph.params()]
        assert "unused" in labels

    def test_unused_inputs_dropped(self):
        tr = Tracer()
        x = tr.input((2, 2), label="x")
        unused = tr.input((9, 9), label="unused_in")
        tr.output(tr.reduce_sum(x))
        result = eliminate_dead_code(tr.graph)
        labels = [n.label for n in result.graph.inputs()]
        assert "unused_in" not in labels


class TestCse:
    def test_duplicate_subexpression_merged(self):
        tr = Tracer()
        x = tr.input((4, 8))
        w = tr.param((8, 8))
        a = tr.sigmoid(tr.matmul(x, w))
        b = tr.sigmoid(tr.matmul(x, w))  # identical
        tr.output(tr.reduce_sum(tr.add(a, b)))
        result = common_subexpression_elimination(tr.graph)
        assert result.mapped(a.node.node_id) == result.mapped(b.node.node_id)
        assert len(result.graph) < len(tr.graph)

    def test_different_attributes_not_merged(self):
        tr = Tracer()
        x = tr.input((4, 8))
        a = tr.scale(x, 2.0)
        b = tr.scale(x, 3.0)
        tr.output(tr.reduce_sum(tr.add(a, b)))
        result = common_subexpression_elimination(tr.graph)
        assert result.mapped(a.node.node_id) != result.mapped(b.node.node_id)

    def test_values_preserved(self):
        tr = Tracer()
        x = tr.input((4, 8))
        w = tr.param((8, 8))
        a = tr.tanh(tr.matmul(x, w))
        b = tr.tanh(tr.matmul(x, w))
        loss = tr.reduce_sum(tr.mul(a, b))
        tr.output(loss)
        result = common_subexpression_elimination(tr.graph)
        bindings = random_bindings(tr.graph, seed=1)
        original = Interpreter(tr.graph).run(bindings)[loss.node.node_id]
        new_bindings = {result.mapped(k): v for k, v in bindings.items()}
        rewritten = Interpreter(result.graph).run(new_bindings)[
            result.mapped(loss.node.node_id)
        ]
        np.testing.assert_allclose(original, rewritten)

    def test_chains_collapse_transitively(self):
        tr = Tracer()
        x = tr.input((4, 4))
        a = tr.relu(tr.sigmoid(x))
        b = tr.relu(tr.sigmoid(x))
        tr.output(tr.reduce_sum(tr.add(a, b)))
        result = common_subexpression_elimination(tr.graph)
        # both the sigmoid AND the relu merge
        assert len(result.graph.compute_nodes()) == 4  # sigmoid, relu, add, sum


class TestSimplify:
    def test_composition(self):
        tr, loss, _dead = build_graph_with_dead_branch()
        result = simplify(tr.graph)
        result.graph.validate()
        assert loss.node.node_id in result.node_map

    def test_model_graphs_already_lean(self, tiny_sublstm):
        """Traced training graphs with DCE'd autodiff shrink only a little."""
        result = simplify(tiny_sublstm.graph)
        assert len(result.graph) >= 0.8 * len(tiny_sublstm.graph)
        result.graph.validate()

    def test_optimization_still_works_after_simplify(self, tiny_sublstm):
        from repro import AstraSession

        result = simplify(tiny_sublstm.graph)
        report = AstraSession(result.graph, features="F", seed=0).optimize()
        assert report.speedup_over_native >= 1.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_simplify_preserves_outputs(seed):
    """Fuzz: simplify never changes any output value."""
    from tests.integration.fuzz_utils import random_program

    tr, loss = random_program(seed, size=8)
    result = simplify(tr.graph)
    bindings = random_bindings(tr.graph, seed=seed)
    original = Interpreter(tr.graph).run(bindings)[loss.node.node_id]
    new_bindings = {
        result.mapped(k): v for k, v in bindings.items() if k in result.node_map
    }
    rewritten = Interpreter(result.graph).run(new_bindings)[
        result.mapped(loss.node.node_id)
    ]
    np.testing.assert_allclose(original, rewritten, rtol=1e-6)
