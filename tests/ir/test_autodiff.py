"""Autodiff correctness: analytic gradients vs central finite differences.

The predictability argument (paper 4.1) rests on the backward graph being
a fixed function of the forward graph; these tests pin down that the
generated backward pass computes the right values for every vjp rule.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import Interpreter, Tracer, backward, random_bindings
from repro.ir.tensor import TensorSpec


def finite_diff_check(tracer, loss, wrt_var, seed=0, probes=3, eps=1e-4, tol=5e-3):
    """Compare analytic gradient against central differences at a few
    random coordinates of ``wrt_var``."""
    grads = backward(tracer, loss, wrt=[wrt_var])
    tracer.graph.validate()
    grad_node = grads[wrt_var.node.node_id].node

    bindings = {
        k: v.astype(np.float64)
        for k, v in random_bindings(tracer.graph, seed=seed).items()
    }
    interp = Interpreter(tracer.graph)
    values = interp.run(bindings)
    analytic = values[grad_node.node_id]

    rng = np.random.default_rng(seed + 1)
    base = bindings[wrt_var.node.node_id]
    flat_indices = rng.choice(base.size, size=min(probes, base.size), replace=False)
    for flat in flat_indices:
        idx = np.unravel_index(flat, base.shape)
        delta = np.zeros_like(base)
        delta[idx] = eps

        def loss_at(offset):
            b = dict(bindings)
            b[wrt_var.node.node_id] = base + offset
            return Interpreter(tracer.graph).run(b)[loss.node.node_id].sum()

        numeric = (loss_at(delta) - loss_at(-delta)) / (2 * eps)
        assert abs(numeric - analytic[idx]) < tol * max(1.0, abs(numeric)), (
            f"grad mismatch at {idx}: numeric={numeric}, analytic={analytic[idx]}"
        )


class TestMatmulGrads:
    @pytest.mark.parametrize("ta", [False, True])
    @pytest.mark.parametrize("tb", [False, True])
    @pytest.mark.parametrize("side", [0, 1])
    def test_all_transpose_combinations(self, ta, tb, side):
        tr = Tracer()
        a_shape = (6, 4) if ta else (4, 6)
        b_shape = (5, 6) if tb else (6, 5)
        a = tr.input(a_shape, label="a")
        b = tr.param(b_shape, label="b")
        y = tr.matmul(a, b, transpose_a=ta, transpose_b=tb)
        loss = tr.reduce_sum(tr.mul(y, y))
        finite_diff_check(tr, loss, [a, b][side])


class TestElementwiseGrads:
    @pytest.mark.parametrize("fn", ["add", "sub", "mul", "div"])
    def test_binary(self, fn):
        tr = Tracer()
        a = tr.input((3, 4), label="a")
        b = tr.param((3, 4), label="b")
        y = getattr(tr, fn)(a, b) if fn != "div" else tr.div(a, tr.add_scalar(tr.mul(b, b), 1.0))
        loss = tr.reduce_sum(y)
        finite_diff_check(tr, loss, b)

    def test_bias_broadcast_grad(self):
        tr = Tracer()
        x = tr.input((4, 6))
        bias = tr.param((6,), label="bias")
        loss = tr.reduce_sum(tr.tanh(tr.add(x, bias)))
        finite_diff_check(tr, loss, bias)

    @pytest.mark.parametrize("fn", ["sigmoid", "tanh", "relu", "exp"])
    def test_unary(self, fn):
        tr = Tracer()
        x = tr.param((3, 5), label="x")
        loss = tr.reduce_sum(getattr(tr, fn)(x))
        finite_diff_check(tr, loss, x, seed=3)

    def test_log_grad(self):
        tr = Tracer()
        x = tr.param((3, 5), label="x")
        positive = tr.add_scalar(tr.mul(x, x), 1.0)
        loss = tr.reduce_sum(tr.log(positive))
        finite_diff_check(tr, loss, x)

    def test_scale_grad(self):
        tr = Tracer()
        x = tr.param((2, 3))
        loss = tr.reduce_sum(tr.scale(x, -2.5))
        grads = backward(tr, loss, wrt=[x])
        values = Interpreter(tr.graph).run(random_bindings(tr.graph, seed=0))
        np.testing.assert_allclose(
            values[grads[x.node.node_id].node.node_id], np.full((2, 3), -2.5), rtol=1e-6
        )


class TestStructuredGrads:
    def test_softmax_grad(self):
        tr = Tracer()
        x = tr.param((3, 6), label="x")
        weights = tr.input((3, 6), label="w")
        loss = tr.reduce_sum(tr.mul(tr.softmax(x), weights))
        finite_diff_check(tr, loss, x, tol=1e-2)

    def test_reduce_sum_axis_grad(self):
        tr = Tracer()
        x = tr.param((4, 5))
        loss = tr.reduce_sum(tr.mul(tr.reduce_sum(x, axis=0), tr.reduce_sum(x, axis=0)))
        finite_diff_check(tr, loss, x)

    def test_reduce_sum_keepdims_grad(self):
        tr = Tracer()
        x = tr.param((4, 5))
        normalized = tr.sub(x, tr.reduce_sum(x, axis=-1, keepdims=True))
        loss = tr.reduce_sum(tr.mul(normalized, normalized))
        finite_diff_check(tr, loss, x)

    def test_slice_and_pad_grads(self):
        tr = Tracer()
        x = tr.param((4, 8))
        left = tr.slice(x, axis=1, start=0, stop=3)
        right = tr.slice(x, axis=1, start=3, stop=8)
        loss = tr.add(tr.reduce_sum(tr.mul(left, left)), tr.reduce_sum(right))
        finite_diff_check(tr, loss, x)

    def test_concat_grad(self):
        tr = Tracer()
        a = tr.param((3, 2), label="a")
        b = tr.input((3, 4), label="b")
        cat = tr.concat([a, b], axis=1)
        loss = tr.reduce_sum(tr.mul(cat, cat))
        finite_diff_check(tr, loss, a)

    def test_transpose_grad(self):
        tr = Tracer()
        x = tr.param((3, 5))
        loss = tr.reduce_sum(tr.mul(tr.transpose(x), tr.transpose(x)))
        finite_diff_check(tr, loss, x)

    def test_reshape_grad(self):
        tr = Tracer()
        x = tr.param((3, 4))
        flat = tr.reshape(x, (12,))
        loss = tr.reduce_sum(tr.mul(flat, flat))
        finite_diff_check(tr, loss, x)

    def test_embedding_grad(self):
        tr = Tracer()
        table = tr.param((7, 3), label="table")
        idx = tr.input((5,), dtype="int64", label="idx")
        emb = tr.embedding(table, idx)
        loss = tr.reduce_sum(tr.mul(emb, emb))
        finite_diff_check(tr, loss, table)

    def test_grad_accumulation_multiple_uses(self):
        tr = Tracer()
        x = tr.param((3, 3))
        y = tr.add(tr.mul(x, x), tr.scale(x, 3.0))  # x used three times
        loss = tr.reduce_sum(y)
        finite_diff_check(tr, loss, x)


class TestBackwardStructure:
    def test_backward_nodes_tagged(self, mlp_tracer):
        tr, loss = mlp_tracer
        backward(tr, loss)
        tags = {n.pass_tag for n in tr.graph.compute_nodes()}
        assert "backward" in tags

    def test_gradients_marked_outputs(self, mlp_tracer):
        tr, loss = mlp_tracer
        grads = backward(tr, loss)
        for var in grads.values():
            assert var.node.node_id in tr.graph.outputs

    def test_param_gradients_match_param_shapes(self, mlp_tracer):
        tr, loss = mlp_tracer
        grads = backward(tr, loss)
        for pid, gvar in grads.items():
            assert tr.graph.node(pid).spec.shape == gvar.spec.shape

    def test_wrt_subset(self, mlp_tracer):
        tr, loss = mlp_tracer
        w1 = next(n for n in tr.graph.params() if n.label == "w1")
        grads = backward(tr, loss, wrt=[tr.var_for(w1)])
        assert set(grads) == {w1.node_id}

    def test_unreachable_target_gets_no_grad(self):
        tr = Tracer()
        x = tr.param((2, 2), label="x")
        unused = tr.param((2, 2), label="unused")
        loss = tr.reduce_sum(x)
        grads = backward(tr, loss)
        assert x.node.node_id in grads
        assert unused.node.node_id not in grads

    def test_backward_roughly_two_thirds_of_compute(self, tiny_sublstm):
        """Paper section 5.1: ~2/3 of training compute is the backward pass."""
        g = tiny_sublstm.graph
        fwd = bwd = 0
        for node in g.compute_nodes():
            in_specs = [g.node(i).spec for i in node.input_ids]
            flops = node.op.flops(in_specs, node.spec)
            if node.pass_tag == "backward":
                bwd += flops
            else:
                fwd += flops
        assert bwd > fwd  # backward strictly dominates
        assert bwd / (fwd + bwd) > 0.5


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(2, 6),
    k=st.integers(2, 6),
    n=st.integers(2, 6),
    seed=st.integers(0, 100),
)
def test_property_matmul_chain_gradcheck(m, k, n, seed):
    """Property: gradient of sum(tanh(A@B)) checks out for random shapes."""
    tr = Tracer()
    a = tr.input((m, k))
    b = tr.param((k, n), label="b")
    loss = tr.reduce_sum(tr.tanh(tr.matmul(a, b)))
    finite_diff_check(tr, loss, b, seed=seed, probes=2)
