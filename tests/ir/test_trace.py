"""Tests for the tracing frontend: operator syntax, scopes, interpreter."""

import numpy as np
import pytest

from repro.ir import Interpreter, Tracer, random_bindings


class TestOperatorSyntax:
    def test_matmul_operator(self):
        tr = Tracer()
        a, b = tr.input((2, 3)), tr.input((3, 4))
        y = a @ b
        assert y.shape == (2, 4)
        assert y.node.op.name == "mm"

    def test_arithmetic_operators(self):
        tr = Tracer()
        a, b = tr.input((2, 2)), tr.input((2, 2))
        assert (a + b).node.op.name == "add"
        assert (a - b).node.op.name == "sub"
        assert (a * b).node.op.name == "mul"
        assert (a / b).node.op.name == "div"

    def test_scalar_multiplication(self):
        tr = Tracer()
        a = tr.input((2, 2))
        assert (a * 2.0).node.op.name == "scale"
        assert (3 * a).node.op.name == "scale"

    def test_repr(self):
        tr = Tracer()
        a = tr.input((2, 2))
        assert "2x2" in repr(a)


class TestScopes:
    def test_nested_scopes(self):
        tr = Tracer()
        x = tr.input((2, 2))
        with tr.scope("layer0"):
            with tr.scope("step1"):
                y = tr.sigmoid(x)
        assert y.node.scope == "layer0/step1"

    def test_scope_restored_after_exit(self):
        tr = Tracer()
        x = tr.input((2, 2))
        with tr.scope("a"):
            pass
        y = tr.sigmoid(x)
        assert y.node.scope == ""

    def test_scope_restored_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.scope("a"):
                raise RuntimeError("boom")
        assert tr.current_scope == ""


class TestVarForeignNodes:
    def test_var_for_rejects_foreign(self):
        tr1, tr2 = Tracer(), Tracer()
        x = tr1.input((2, 2))
        with pytest.raises(ValueError):
            tr2.var_for(x.node)


class TestInterpreter:
    def test_end_to_end_mlp(self, mlp_tracer):
        tr, loss = mlp_tracer
        bindings = random_bindings(tr.graph, seed=42)
        out = Interpreter(tr.graph).run_outputs(bindings)
        assert loss.node.node_id in out

    def test_reference_semantics(self):
        """Traced computation matches the straight-line numpy program."""
        tr = Tracer()
        x = tr.input((3, 4), label="x")
        w = tr.param((4, 2), label="w")
        y = tr.softmax(tr.tanh(x @ w))
        bindings = random_bindings(tr.graph, seed=7)
        result = Interpreter(tr.graph).run(bindings)[y.node.node_id]
        vx = bindings[x.node.node_id]
        vw = bindings[w.node.node_id]
        ref = np.tanh(vx @ vw)
        ref = np.exp(ref - ref.max(-1, keepdims=True))
        ref = ref / ref.sum(-1, keepdims=True)
        np.testing.assert_allclose(result, ref, rtol=1e-5)

    def test_missing_binding_raises(self):
        tr = Tracer()
        x = tr.input((2, 2))
        y = tr.sigmoid(x)
        with pytest.raises(KeyError):
            Interpreter(tr.graph).run({})

    def test_shape_mismatch_caught(self):
        tr = Tracer()
        x = tr.input((2, 2))
        tr.sigmoid(x)
        with pytest.raises(ValueError):
            Interpreter(tr.graph).run({x.node.node_id: np.ones((3, 3))})

    def test_int_bindings_bounded(self):
        tr = Tracer()
        table = tr.param((10, 4))
        idx = tr.input((6,), dtype="int64")
        tr.embedding(table, idx)
        bindings = random_bindings(tr.graph, seed=0, int_high=10)
        assert bindings[idx.node.node_id].max() < 10

    def test_models_evaluate(self, tiny_scrnn):
        """Every traced model must actually execute on the interpreter."""
        g = tiny_scrnn.graph
        bindings = random_bindings(g, seed=1, int_high=tiny_scrnn.config.vocab_size)
        values = Interpreter(g).run(bindings)
        loss_value = values[tiny_scrnn.loss.node.node_id]
        assert np.isfinite(loss_value).all()
