"""Tests for the multi-GPU data-parallel dimension (§3.4 extension)."""

import pytest

from repro.distributed import (
    NVLINK,
    PCIE,
    choose_parallelism,
    gradient_bytes,
    measure_degree,
)
from repro.models import build_sublstm
from tests.conftest import TINY


class TestInterconnect:
    def test_allreduce_zero_for_single(self):
        assert PCIE.allreduce_us(10**6, 1) == 0.0

    def test_allreduce_grows_with_world(self):
        assert PCIE.allreduce_us(10**6, 4) > PCIE.allreduce_us(10**6, 2)

    def test_allreduce_grows_with_bytes(self):
        assert PCIE.allreduce_us(10**7, 4) > PCIE.allreduce_us(10**6, 4)

    def test_nvlink_faster_than_pcie(self):
        assert NVLINK.allreduce_us(10**7, 4) < PCIE.allreduce_us(10**7, 4)

    def test_ring_volume_saturates(self):
        """Per-replica traffic approaches 2x bytes as N grows (ring
        all-reduce property), so doubling N far from doubles the time."""
        t2 = PCIE.allreduce_us(10**7, 2)
        t16 = PCIE.allreduce_us(10**7, 16)
        assert t16 < 2.5 * t2

    def test_broadcast(self):
        assert PCIE.broadcast_us(10**6, 1) == 0.0
        assert PCIE.broadcast_us(10**6, 4) > 0


class TestMeasureDegree:
    def test_strong_scaling_divides_batch(self):
        config = TINY.scaled(batch_size=8)
        m = measure_degree(build_sublstm, config, world=4)
        assert m.per_replica_batch == 2

    def test_weak_scaling_keeps_batch(self):
        config = TINY.scaled(batch_size=8)
        m = measure_degree(build_sublstm, config, world=4, strong_scaling=False)
        assert m.per_replica_batch == 8

    def test_communication_overlap_bounded(self):
        config = TINY.scaled(batch_size=8)
        m = measure_degree(build_sublstm, config, world=4)
        assert 0 <= m.exposed_comm_us <= m.allreduce_us

    def test_gradient_bytes_counts_params(self, tiny_sublstm):
        assert gradient_bytes(tiny_sublstm.graph) == sum(
            n.spec.size_bytes for n in tiny_sublstm.graph.params()
        )

    def test_astra_inside_replicas(self):
        """Section 6.7: single-GPU adaptation benefits each replica."""
        config = TINY.scaled(batch_size=8)
        plain = measure_degree(build_sublstm, config, world=2)
        tuned = measure_degree(build_sublstm, config, world=2, use_astra=True)
        assert tuned.compute_us < plain.compute_us
        assert tuned.astra_speedup > 1.0


class TestChooseParallelism:
    def test_sorted_by_per_sample_time(self):
        config = TINY.scaled(batch_size=16)
        ms = choose_parallelism(build_sublstm, config, degrees=(1, 2, 4))
        per_sample = [m.per_sample_us for m in ms]
        assert per_sample == sorted(per_sample)

    def test_fabric_changes_the_answer(self):
        """The paper's point: the ideal degree depends on the physical
        network, so it must be measured per deployment."""
        config = TINY.scaled(batch_size=16, hidden_size=64, embed_size=64)
        pcie = choose_parallelism(build_sublstm, config, degrees=(1, 2, 4),
                                  interconnect=PCIE)
        nvlink = choose_parallelism(build_sublstm, config, degrees=(1, 2, 4),
                                    interconnect=NVLINK)
        # NVLink's winner scales at least as far as PCIe's
        assert nvlink[0].world >= pcie[0].world

    def test_degrees_beyond_batch_skipped(self):
        config = TINY.scaled(batch_size=2)
        ms = choose_parallelism(build_sublstm, config, degrees=(1, 2, 4, 8))
        assert {m.world for m in ms} <= {1, 2, 4, 8}

    def test_scaling_efficiency_baseline(self):
        config = TINY.scaled(batch_size=16)
        ms = choose_parallelism(build_sublstm, config, degrees=(1, 2))
        base = next(m for m in ms if m.world == 1)
        assert base.scaling_efficiency == pytest.approx(1.0)


class TestPipeline:
    def test_stages_partition_layers(self):
        from repro.distributed import measure_pipeline
        from repro.models import build_stacked_lstm
        import repro.models.stacked_lstm as ST

        cfg = ST.DEFAULT_CONFIG.scaled(batch_size=16, seq_len=3, num_layers=4,
                                       hidden_size=256, embed_size=256)
        pipe = measure_pipeline(build_stacked_lstm, cfg, num_stages=2)
        assert pipe.num_stages == 2
        all_scopes = [s for stage in pipe.stages for s in stage.scopes]
        assert sorted(all_scopes) == sorted(set(all_scopes))  # disjoint
        assert all(stage.compute_us > 0 for stage in pipe.stages)

    def test_bubble_grows_with_stages(self):
        from repro.distributed import measure_pipeline
        from repro.models import build_stacked_lstm
        import repro.models.stacked_lstm as ST

        cfg = ST.DEFAULT_CONFIG.scaled(batch_size=16, seq_len=3, num_layers=4,
                                       hidden_size=256, embed_size=256)
        two = measure_pipeline(build_stacked_lstm, cfg, num_stages=2)
        four = measure_pipeline(build_stacked_lstm, cfg, num_stages=4)
        # deeper pipelines pay more bubble slots
        assert four.step_us / four.beat_us > two.step_us / two.beat_us

    def test_too_many_stages_rejected(self):
        from repro.distributed import measure_pipeline
        from repro.models import build_sublstm

        with pytest.raises(ValueError):
            measure_pipeline(build_sublstm, TINY, num_stages=5)

    def test_partitioning_decision_measured(self):
        from repro.distributed import choose_partitioning
        from repro.models import build_stacked_lstm
        import repro.models.stacked_lstm as ST

        cfg = ST.DEFAULT_CONFIG.scaled(batch_size=16, seq_len=3, num_layers=4,
                                       hidden_size=256, embed_size=256)
        decisions = choose_partitioning(build_stacked_lstm, cfg, world=2)
        kinds = {d.kind for d in decisions}
        assert kinds == {"data", "pipeline"}
        per_sample = [d.per_sample_us for d in decisions]
        assert per_sample == sorted(per_sample)

    def test_single_layer_model_has_no_pipeline_option(self):
        from repro.distributed import choose_partitioning
        from repro.models import build_sublstm

        decisions = choose_partitioning(build_sublstm, TINY, world=3)
        assert {d.kind for d in decisions} == {"data"}
