"""Structural tests for the model zoo."""

import numpy as np
import pytest

from repro.ir import Interpreter, random_bindings
from repro.models import (
    MODEL_BUILDERS,
    ModelConfig,
    build_gnmt,
    build_scrnn,
    build_stacked_lstm,
    build_sublstm,
)
from tests.conftest import TINY


class TestTracing:
    def test_all_models_trace_and_validate(self, all_tiny_models):
        for model in all_tiny_models:
            model.graph.validate()
            assert len(model.graph) > 50

    def test_training_graphs_have_both_passes(self, all_tiny_models):
        for model in all_tiny_models:
            tags = {n.pass_tag for n in model.graph.compute_nodes()}
            assert tags == {"forward", "backward"}, model.name

    def test_inference_graph_forward_only(self):
        model = build_scrnn(TINY.scaled(train=False))
        tags = {n.pass_tag for n in model.graph.compute_nodes()}
        assert tags == {"forward"}

    def test_param_gradients_exist(self, tiny_sublstm):
        g = tiny_sublstm.graph
        # every gate weight should receive a gradient output
        assert len(g.outputs) > len(g.params()) // 2

    def test_logits_per_step(self, tiny_scrnn):
        assert len(tiny_scrnn.logit_nodes) == tiny_scrnn.config.seq_len


class TestShapesScaleWithConfig:
    @pytest.mark.parametrize("batch", [2, 8])
    def test_batch_size_propagates(self, batch):
        model = build_sublstm(TINY.scaled(batch_size=batch))
        logits = model.graph.node(model.logit_nodes[0])
        assert logits.spec.shape[0] == batch

    def test_seq_len_scales_gemm_count(self):
        short = build_sublstm(TINY.scaled(seq_len=2))
        long = build_sublstm(TINY.scaled(seq_len=4))
        assert len(long.graph.gemm_nodes()) > len(short.graph.gemm_nodes())

    def test_layers_scale_stacked_lstm(self):
        one = build_stacked_lstm(TINY.scaled(num_layers=1))
        two = build_stacked_lstm(TINY.scaled(num_layers=2))
        assert len(two.graph.gemm_nodes()) > len(one.graph.gemm_nodes())

    def test_embedding_optional(self):
        with_e = build_sublstm(TINY)
        without = build_sublstm(TINY.scaled(use_embedding=False))
        kinds_with = {n.kind for n in with_e.graph.compute_nodes()}
        kinds_without = {n.kind for n in without.graph.compute_nodes()}
        assert "embedding" in kinds_with
        assert "embedding" not in kinds_without


class TestModelStructure:
    def test_sublstm_gate_count(self):
        """4 gates x 2 GEMMs per step, plus 1 head GEMM per step, times
        seq_len, doubled-ish by backward."""
        model = build_sublstm(TINY)
        fwd_gemms = [
            n for n in model.graph.gemm_nodes() if n.pass_tag == "forward"
        ]
        per_step = len(fwd_gemms) / TINY.seq_len
        assert per_step == pytest.approx(9)  # 8 gate + 1 head

    def test_scrnn_context_layer(self):
        model = build_scrnn(TINY)
        fwd_gemms = [n for n in model.graph.gemm_nodes() if n.pass_tag == "forward"]
        per_step = len(fwd_gemms) / TINY.seq_len
        assert per_step == pytest.approx(5)  # B, P, A, R + head

    def test_gnmt_depth(self):
        shallow = build_gnmt(TINY.scaled(num_layers=1))
        deep = build_gnmt(TINY.scaled(num_layers=2))
        assert len(deep.graph.gemm_nodes()) > 1.5 * len(shallow.graph.gemm_nodes())

    def test_gnmt_has_attention_gemms(self, tiny_gnmt):
        scopes = {
            n.scope for n in tiny_gnmt.graph.gemm_nodes() if "attention" in n.scope
        }
        assert scopes

    def test_milstm_has_multiplicative_integration(self, tiny_milstm):
        """MI gates multiply Wx and Uh elementwise -- there must be muls
        consuming two GEMM outputs."""
        g = tiny_milstm.graph
        found = False
        for node in g.compute_nodes():
            if node.op.name != "mul" or node.pass_tag != "backward":
                pass
            if node.op.name == "mul" and all(
                g.node(i).kind == "gemm" for i in node.input_ids
            ):
                found = True
        assert found


class TestNumericalSanity:
    @pytest.mark.parametrize("name", ["scrnn", "sublstm"])
    def test_loss_finite(self, name):
        model = MODEL_BUILDERS[name](TINY)
        bindings = random_bindings(model.graph, seed=0, int_high=TINY.vocab_size)
        values = Interpreter(model.graph).run(bindings)
        loss = values[model.loss.node.node_id]
        assert np.isfinite(loss).all()

    def test_loss_is_mean_scaled(self, tiny_scrnn):
        """Loss carries the 1/(batch*seq) normalization."""
        scale_nodes = [
            n for n in tiny_scrnn.graph.compute_nodes()
            if n.op.name == "scale" and n.scope.startswith("head/total")
        ]
        assert scale_nodes
