"""Tests for the additional long-tail cells from the paper's introduction
(RHN, LSTM with Attention)."""

import pytest

from repro import AstraSession
from repro.baselines import detect_lstm_steps
from repro.core import analyse_fusion
from repro.models import ModelConfig, build_attn_lstm, build_rhn
from tests.conftest import TINY


@pytest.fixture(scope="module")
def tiny_rhn():
    return build_rhn(TINY, depth=2)


@pytest.fixture(scope="module")
def tiny_attn_lstm():
    return build_attn_lstm(TINY)


class TestRhn:
    def test_traces_and_validates(self, tiny_rhn):
        tiny_rhn.graph.validate()

    def test_depth_scales_gemms(self):
        shallow = build_rhn(TINY, depth=1)
        deep = build_rhn(TINY, depth=3)
        assert len(deep.graph.gemm_nodes()) > len(shallow.graph.gemm_nodes())

    def test_no_cudnn_coverage(self, tiny_rhn):
        """RHN is one of the paper's 'not accelerated by cuDNN' examples."""
        assert detect_lstm_steps(tiny_rhn.graph).fraction_of_gemms == 0.0

    def test_first_microlayer_is_ladder(self, tiny_rhn):
        """x@W + s@R forms a fusion ladder in micro-layer 0."""
        analysis = analyse_fusion(tiny_rhn.graph)
        members = analysis.singletons + [
            mb for g in analysis.groups for mb in g.members
        ]
        ladders = [m for m in members if m.is_ladder and m.scope.startswith("hwy0")]
        assert ladders

    def test_astra_accelerates(self, tiny_rhn):
        report = AstraSession(tiny_rhn, features="FK", seed=0).optimize()
        assert report.speedup_over_native > 1.0


class TestAttnLstm:
    def test_traces_and_validates(self, tiny_attn_lstm):
        tiny_attn_lstm.graph.validate()

    def test_partial_cudnn_coverage(self, tiny_attn_lstm):
        """The LSTM core is coverable; the interleaved attention is not --
        the accelerator's per-layer abstraction breaks (section 2.4)."""
        coverage = detect_lstm_steps(tiny_attn_lstm.graph)
        assert 0.2 < coverage.fraction_of_gemms < 1.0
        attn = [
            n for n in tiny_attn_lstm.graph.gemm_nodes()
            if "attention" in n.scope
        ]
        assert attn
        assert all(n.node_id not in coverage.covered_nodes for n in attn)

    def test_attention_grows_with_history(self, tiny_attn_lstm):
        """Later steps attend over longer histories: score GEMMs widen."""
        from repro.ir import ops

        widths = []
        for node in tiny_attn_lstm.graph.gemm_nodes():
            if "attention" not in node.scope or node.pass_tag != "forward":
                continue
            m, k, n = node.op.gemm_dims(
                [tiny_attn_lstm.graph.node(i).spec for i in node.input_ids]
            )
            if m == TINY.batch_size and n < TINY.seq_len:
                widths.append(n)
        assert widths and max(widths) > min(widths)

    def test_astra_accelerates(self, tiny_attn_lstm):
        report = AstraSession(tiny_attn_lstm, features="FK", seed=0).optimize()
        assert report.speedup_over_native > 1.0
