"""Tests for the TCN model (section 6.7's convolution generalization)."""

import pytest

from repro import AstraSession
from repro.baselines import detect_lstm_steps
from repro.core import AstraFeatures, Enumerator, analyse_fusion
from repro.gpu import P100
from repro.models import ModelConfig, build_tcn
from repro.runtime import Dispatcher, ExecutionPlan, build_units
from repro.core.epochs import partition_epochs
from tests.conftest import TINY


@pytest.fixture(scope="module")
def tiny_tcn():
    return build_tcn(TINY.scaled(num_layers=2))


class TestStructure:
    def test_traces_and_validates(self, tiny_tcn):
        tiny_tcn.graph.validate()

    def test_im2col_gemm_dims(self, tiny_tcn):
        """Each conv step is one (B, k*C) x (k*C, H) GEMM."""
        k, hidden = 3, TINY.hidden_size
        dims = set()
        for node in tiny_tcn.graph.gemm_nodes():
            if node.scope.startswith("conv") and node.pass_tag == "forward":
                m, kk, n = node.op.gemm_dims(
                    [tiny_tcn.graph.node(i).spec for i in node.input_ids]
                )
                dims.add((m, kk, n))
        assert (TINY.batch_size, k * hidden, hidden) in dims

    def test_not_cudnn_lstm_coverable(self, tiny_tcn):
        assert detect_lstm_steps(tiny_tcn.graph).fraction_of_gemms == 0.0

    def test_cross_step_fusion_groups_found(self, tiny_tcn):
        """All steps of a layer share the filter: M-axis batching groups."""
        analysis = analyse_fusion(tiny_tcn.graph)
        m_groups = [g for g in analysis.groups if g.axis == "m" and "conv" in g.group_id]
        assert m_groups
        assert any(g.size == TINY.seq_len for g in m_groups)

    def test_no_recurrence_wide_epochs(self, tiny_tcn):
        """Without recurrence, a layer's steps land in the same dependency
        level -- the parallelism stream adaptation harvests."""
        units = build_units(tiny_tcn.graph)
        deps = Dispatcher(tiny_tcn.graph).unit_dependencies(ExecutionPlan(units=units))
        partition = partition_epochs(units, deps, P100)
        widest = max(len(e.unit_ids) for e in partition.epochs)
        assert widest >= TINY.seq_len


class TestOptimization:
    def test_astra_accelerates(self, tiny_tcn):
        report = AstraSession(tiny_tcn, features="FKS", seed=0).optimize()
        assert report.speedup_over_native > 1.0

    def test_kernel_size_scales_gemm_k(self):
        narrow = build_tcn(TINY, kernel_size=2)
        wide = build_tcn(TINY, kernel_size=4)

        def max_k(model):
            return max(
                node.op.gemm_dims([model.graph.node(i).spec for i in node.input_ids])[1]
                for node in model.graph.gemm_nodes()
                if node.scope.startswith("conv") and node.pass_tag == "forward"
            )

        assert max_k(wide) == 2 * max_k(narrow)
