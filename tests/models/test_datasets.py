"""Tests for dataset length distributions and bucketing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import (
    HUTTER_LENGTHS,
    PAPER_PTB_BUCKETS,
    PTB_LENGTHS,
    bucket_for,
    compute_buckets,
)


class TestDistributions:
    def test_sampling_deterministic(self):
        a = PTB_LENGTHS.sample(100, seed=3)
        b = PTB_LENGTHS.sample(100, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_bounds_respected(self):
        lengths = PTB_LENGTHS.sample(2000, seed=0)
        assert lengths.min() >= PTB_LENGTHS.min_len
        assert lengths.max() <= PTB_LENGTHS.max_len

    def test_hutter_fixed_length(self):
        lengths = HUTTER_LENGTHS.sample(50, seed=1)
        assert (lengths == 50).all()

    def test_ptb_mean_plausible(self):
        lengths = PTB_LENGTHS.sample(5000, seed=0)
        assert 18 < lengths.mean() < 27  # PTB averages ~21 tokens


class TestBuckets:
    def test_paper_bucket_boundaries_reproduced(self):
        """Section 6.5: 5 buckets calibrated on PTB gave 13/18/24/30/83."""
        lengths = PTB_LENGTHS.sample(5000, seed=0)
        buckets = compute_buckets(lengths, 5)
        assert len(buckets) == 5
        assert buckets[0] == PAPER_PTB_BUCKETS[0]
        assert buckets[-1] == PAPER_PTB_BUCKETS[-1]
        # interior bounds within a couple of tokens of the paper's
        for ours, paper in zip(buckets[1:4], PAPER_PTB_BUCKETS[1:4]):
            assert abs(ours - paper) <= 3

    def test_last_bucket_covers_max(self):
        lengths = np.array([5, 10, 20, 40])
        assert compute_buckets(lengths, 3)[-1] == 40

    def test_degenerate_distribution_dedupes(self):
        buckets = compute_buckets(np.full(100, 7), 5)
        assert buckets == (7,)

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            compute_buckets(np.array([1, 2]), 0)

    def test_bucket_for_maps_to_larger(self):
        buckets = (13, 18, 24, 30, 83)
        assert bucket_for(5, buckets) == 0
        assert bucket_for(13, buckets) == 0
        assert bucket_for(14, buckets) == 1
        assert bucket_for(83, buckets) == 4

    def test_bucket_for_beyond_max_clamps(self):
        assert bucket_for(1000, (13, 18)) == 1


@settings(max_examples=50, deadline=None)
@given(
    lengths=st.lists(st.integers(1, 100), min_size=5, max_size=200),
    k=st.integers(1, 6),
)
def test_property_every_length_fits_its_bucket(lengths, k):
    arr = np.array(lengths)
    buckets = compute_buckets(arr, k)
    for length in lengths:
        b = bucket_for(int(length), buckets)
        assert buckets[b] >= length or b == len(buckets) - 1


@settings(max_examples=50, deadline=None)
@given(lengths=st.lists(st.integers(1, 100), min_size=5, max_size=200), k=st.integers(1, 6))
def test_property_buckets_strictly_increasing(lengths, k):
    buckets = compute_buckets(np.array(lengths), k)
    assert all(a < b for a, b in zip(buckets, buckets[1:]))
