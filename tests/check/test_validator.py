"""Unit tests for the happens-before model and the schedule validator.

The mutation harness in ``test_mutations.py`` checks that broken
schedules are flagged; this module checks the other direction -- the
model itself (stream FIFO, events, barriers) and the requirement that
every *correct* schedule passes cleanly.
"""

import pytest

from repro.check import (
    DEADLOCK,
    MISSING_EVENT,
    HappensBefore,
    ScheduleValidationError,
    check_arena_layout,
    dependency_edges,
    validate_schedule,
)
from repro.baselines.native import native_plan
from repro.gpu import P100
from repro.gpu.events import EventId
from repro.gpu.kernels import ElementwiseLaunch, GemmLaunch
from repro.gpu.memory import AllocationPlan, ContiguityGroup
from repro.gpu.streams import (
    HostComputeItem,
    HostSyncItem,
    LaunchItem,
    RecordEventItem,
)
from repro.ir import Tracer
from repro.obs.metrics import MetricsRegistry
from repro.runtime import Dispatcher, ExecutionPlan, Executor, Unit, build_units


def _kernel(label="k"):
    return ElementwiseLaunch(num_elements=16, label=label)


def _launch(stream=0, waits=(), record=None):
    return LaunchItem(
        _kernel(), stream=stream, waits=tuple(waits), record=record,
        record_is_profiling=False,
    )


class TestHappensBefore:
    def test_same_stream_fifo(self):
        hb = HappensBefore([_launch(0), _launch(0)])
        assert hb.ordered(0, 1)
        assert not hb.ordered(1, 0)

    def test_cross_stream_unordered_without_events(self):
        hb = HappensBefore([_launch(0), _launch(1)])
        assert not hb.ordered(0, 1)
        assert not hb.ordered(1, 0)

    def test_record_wait_orders_cross_stream(self):
        e = EventId(0)
        hb = HappensBefore([_launch(0, record=e), _launch(1, waits=(e,))])
        assert hb.ordered(0, 1)
        assert not hb.violations

    def test_forward_wait_reference_resolves(self):
        """A wait may name an event recorded later in dispatch order; the
        simulator resolves it when the event completes."""
        e = EventId(0)
        hb = HappensBefore([_launch(1, waits=(e,)), _launch(0, record=e)])
        assert hb.ordered(1, 0)
        assert not hb.violations

    def test_bare_record_piggybacks_on_stream(self):
        e = EventId(0)
        items = [_launch(0), RecordEventItem(stream=0, event=e), _launch(1, waits=(e,))]
        hb = HappensBefore(items)
        assert hb.ordered(0, 2)

    def test_record_on_idle_stream_completes_immediately(self):
        e = EventId(0)
        items = [RecordEventItem(stream=0, event=e), _launch(1, waits=(e,))]
        hb = HappensBefore(items)
        assert not hb.violations
        assert not hb.has_deadlock

    def test_sync_all_is_global_barrier(self):
        items = [_launch(0), _launch(1), HostSyncItem(None), _launch(0)]
        hb = HappensBefore(items)
        assert hb.ordered(0, 3)
        assert hb.ordered(1, 3)

    def test_sync_on_event_only_orders_that_event(self):
        e = EventId(0)
        items = [
            _launch(0, record=e),
            _launch(1),
            HostSyncItem(e),
            _launch(2),
        ]
        hb = HappensBefore(items)
        assert hb.ordered(0, 3)
        # stream 1's in-flight kernel is NOT waited for by a one-event sync
        assert not hb.ordered(1, 3)

    def test_host_compute_stalls_later_dispatch_only(self):
        items = [_launch(0), HostComputeItem(5.0, "host"), _launch(1)]
        hb = HappensBefore(items)
        # host work blocks what comes after it...
        assert hb.ordered(1, 2)
        # ...but does not wait for kernels already in flight
        assert not hb.ordered(0, 1)

    def test_wait_on_unrecorded_event_is_missing_event(self):
        hb = HappensBefore([_launch(0, waits=(EventId(7),))])
        assert [v.kind for v in hb.violations] == [MISSING_EVENT]

    def test_cyclic_waits_are_deadlock(self):
        e0, e1 = EventId(0), EventId(1)
        items = [
            _launch(0, waits=(e1,), record=e0),
            _launch(1, waits=(e0,), record=e1),
        ]
        hb = HappensBefore(items)
        assert hb.has_deadlock
        assert DEADLOCK in {v.kind for v in hb.violations}

    def test_work_and_event_counts(self):
        e = EventId(0)
        items = [_launch(0, record=e), HostComputeItem(1.0), _launch(1, waits=(e,))]
        hb = HappensBefore(items)
        assert hb.work_count == 3
        assert hb.event_count == 1
        assert hb.is_work_item(0) and hb.is_work_item(1) and hb.is_work_item(2)


@pytest.fixture()
def diamond():
    """x -> (a, b) -> c with one unit per compute node."""
    tr = Tracer("diamond")
    x = tr.input((8, 8))
    w1 = tr.param((8, 8))
    w2 = tr.param((8, 8))
    a = tr.matmul(x, w1)
    b = tr.matmul(x, w2)
    c = tr.add(a, b)
    tr.output(c)
    units = [
        Unit(0, GemmLaunch(8, 8, 8, "cublas"), (a.node.node_id,)),
        Unit(1, GemmLaunch(8, 8, 8, "cublas"), (b.node.node_id,)),
        Unit(2, ElementwiseLaunch(num_elements=64), (c.node.node_id,)),
    ]
    return tr.graph, units


class TestValidateSchedule:
    def test_single_stream_plan_is_clean(self, diamond):
        graph, units = diamond
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=False))
        report = validate_schedule(lowered)
        assert report.ok, report.summary()
        assert report.launches == 3
        assert report.dependencies == 2

    def test_cross_stream_plan_is_clean(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(
            units=units, stream_of={0: 0, 1: 1, 2: 0}, profile=False
        )
        report = validate_schedule(Dispatcher(graph).lower(plan))
        assert report.ok, report.summary()
        assert report.events >= 1

    def test_profiled_plan_is_clean(self, diamond):
        graph, units = diamond
        plan = ExecutionPlan(units=units, stream_of={0: 0, 1: 1, 2: 0}, profile=True)
        report = validate_schedule(Dispatcher(graph).lower(plan))
        assert report.ok, report.summary()

    def test_native_model_deep_validation(self, tiny_scrnn):
        graph = tiny_scrnn.graph
        lowered = Dispatcher(graph).lower(native_plan(graph))
        report = validate_schedule(lowered, deep=True, label="scrnn/native")
        assert report.ok, report.summary()
        assert report.tensors > 0

    def test_round_robin_streams_validate_clean(self, tiny_sublstm):
        graph = tiny_sublstm.graph
        units = build_units(graph)
        plan = ExecutionPlan(
            units=units,
            stream_of={u.unit_id: u.unit_id % 2 for u in units},
            profile=False,
            label="sublstm/rr2",
        )
        report = validate_schedule(Dispatcher(graph).lower(plan))
        assert report.ok, report.summary()
        deps = dependency_edges(graph, plan)
        assert any(
            plan.stream(p) != plan.stream(c) for (p, c) in deps
        ), "round-robin assignment should produce cross-stream edges"

    def test_report_serializes(self, diamond):
        graph, units = diamond
        lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=False))
        payload = validate_schedule(lowered).to_dict()
        assert payload["ok"] is True
        assert payload["launches"] == 3


class TestArenaLayout:
    def test_clean_plan_passes(self, diamond):
        graph, units = diamond
        a, b = units[0].node_ids[0], units[1].node_ids[0]
        allocation = AllocationPlan(
            graph, groups=[ContiguityGroup(node_ids=(a, b), label="ab")]
        )
        report = validate_schedule(
            Dispatcher(graph).lower(
                ExecutionPlan(units=units, allocation=allocation, profile=False)
            )
        )
        assert report.ok, report.summary()

    def test_checker_counts_tensors(self, diamond):
        from repro.check import ValidationReport

        graph, _units = diamond
        report = ValidationReport()
        check_arena_layout(AllocationPlan(graph), report)
        assert report.tensors == len(graph.nodes)
        assert report.ok


class TestValidatedExecution:
    def test_executor_validate_mode_runs_clean_plans(self, diamond):
        graph, units = diamond
        metrics = MetricsRegistry()
        executor = Executor(graph, P100, validate=True, metrics=metrics)
        result = executor.run(ExecutionPlan(units=units, profile=False))
        assert result.total_time_us > 0
        snap = metrics.snapshot()
        assert snap["check.schedules_validated"]["value"] == 1

    def test_executor_raises_on_broken_schedule(self, diamond):
        from dataclasses import replace

        graph, units = diamond
        metrics = MetricsRegistry()
        executor = Executor(graph, P100, validate=True, metrics=metrics)
        plan = ExecutionPlan(units=units, stream_of={0: 0, 1: 1, 2: 0}, profile=False)
        lowered = executor.dispatcher.lower(plan)
        for idx, item in enumerate(lowered.items):
            if isinstance(item, LaunchItem) and item.waits:
                lowered.items[idx] = replace(item, waits=())
        with pytest.raises(ScheduleValidationError) as excinfo:
            executor.run_lowered(lowered)
        assert not excinfo.value.report.ok
        snap = metrics.snapshot()
        assert snap["check.violations.raw-race"]["value"] >= 1

    def test_session_validated_exploration(self, tiny_scrnn):
        from repro import AstraSession

        metrics = MetricsRegistry()
        report = AstraSession(
            tiny_scrnn, features="FK", seed=0, validate=True, metrics=metrics
        ).optimize(max_minibatches=30)
        assert report.speedup_over_native >= 1.0
        snap = metrics.snapshot()
        assert snap["check.schedules_validated"]["value"] > 0
        violation_counters = [
            name for name in snap if name.startswith("check.violations.")
        ]
        assert violation_counters == []
