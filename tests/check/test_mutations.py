"""Mutation tests for the schedule validator: zero surviving mutants.

Each mutation takes a *valid* lowered schedule (or allocation/free list)
and breaks it in one specific, guaranteed-non-equivalent way -- drop a
load-bearing wait, reorder dependent launches, free a buffer early,
overlap contiguity groups.  The validator must flag every mutant with
the right violation kind; a validator that passes a mutant is itself the
bug under test here.

Mutants are built surgically on the diamond schedule (where every wait
and every program-order edge is provably load-bearing) and at scale on a
two-stream sCRNN lowering.
"""

from dataclasses import replace

import pytest

from repro.check import (
    DEADLOCK,
    DOUBLE_FREE,
    GROUP_BROKEN,
    GROUP_OVERLAP,
    MISSING_EVENT,
    RAW_RACE,
    USE_WHILE_FREED,
    WAR_RACE,
    FreeEvent,
    HappensBefore,
    ValidationReport,
    check_arena_layout,
    check_frees,
    derive_frees,
    validate_schedule,
)
from repro.gpu.events import EventId
from repro.gpu.kernels import ElementwiseLaunch, GemmLaunch
from repro.gpu.memory import AllocationPlan, ContiguityGroup
from repro.gpu.streams import LaunchItem
from repro.ir import Tracer
from repro.runtime import Dispatcher, ExecutionPlan, Unit, build_units


# ---------------------------------------------------------------------------
# schedule factories (fresh objects per mutant: mutation is destructive)
# ---------------------------------------------------------------------------


def _diamond():
    tr = Tracer("diamond")
    x = tr.input((8, 8))
    w1 = tr.param((8, 8))
    w2 = tr.param((8, 8))
    a = tr.matmul(x, w1)
    b = tr.matmul(x, w2)
    c = tr.add(a, b)
    tr.output(c)
    units = [
        Unit(0, GemmLaunch(8, 8, 8, "cublas"), (a.node.node_id,)),
        Unit(1, GemmLaunch(8, 8, 8, "cublas"), (b.node.node_id,)),
        Unit(2, ElementwiseLaunch(num_elements=64), (c.node.node_id,)),
    ]
    return tr.graph, units


def lower_diamond(stream_of=None):
    graph, units = _diamond()
    plan = ExecutionPlan(
        units=units, stream_of=dict(stream_of or {}), profile=False
    )
    return Dispatcher(graph).lower(plan)


def lower_scrnn_two_streams(tiny_scrnn):
    graph = tiny_scrnn.graph
    units = build_units(graph)
    plan = ExecutionPlan(
        units=units,
        stream_of={u.unit_id: u.unit_id % 2 for u in units},
        profile=False,
        label="scrnn/rr2",
    )
    return Dispatcher(graph).lower(plan)


def _launch_indices(lowered, pred=lambda item: True):
    return [
        idx
        for idx, item in enumerate(lowered.items)
        if isinstance(item, LaunchItem) and pred(item)
    ]


def _swap_items(lowered, i, j):
    """Swap two dispatch items, keeping the index-keyed unit map honest."""
    lowered.items[i], lowered.items[j] = lowered.items[j], lowered.items[i]
    iu = lowered.item_units
    ui, uj = iu.get(i), iu.get(j)
    for idx, uid in ((i, uj), (j, ui)):
        if uid is None:
            iu.pop(idx, None)
        else:
            iu[idx] = uid


# ---------------------------------------------------------------------------
# the mutants
# ---------------------------------------------------------------------------
#
# Each entry: name -> (build_report, expected_kind).  build_report
# constructs a fresh valid artifact, applies one mutation, and returns the
# validator's report.  ``MUTANTS`` is shared by the per-mutant parametrized
# test and the zero-survivors sweep.


def mutant_drop_wait(tiny_scrnn):
    """Remove the consumer's cross-stream wait-event."""
    lowered = lower_diamond(stream_of={0: 0, 1: 1, 2: 0})
    waiters = _launch_indices(lowered, lambda item: item.waits)
    assert waiters, "cross-stream diamond must synchronize with events"
    idx = waiters[0]
    lowered.items[idx] = replace(lowered.items[idx], waits=())
    return validate_schedule(lowered)


def mutant_drop_record(tiny_scrnn):
    """Remove the producer's record; the wait now names a ghost event."""
    lowered = lower_diamond(stream_of={0: 0, 1: 1, 2: 0})
    recorders = _launch_indices(lowered, lambda item: item.record is not None)
    assert recorders
    idx = recorders[0]
    lowered.items[idx] = replace(lowered.items[idx], record=None)
    return validate_schedule(lowered)


def mutant_swap_dependent_launches(tiny_scrnn):
    """Reorder a producer after its consumer on one stream: FIFO was the
    only thing ordering them."""
    lowered = lower_diamond()  # single stream: deps enforced by FIFO alone
    launches = _launch_indices(lowered)
    # last launch is the add (unit 2); its producers precede it
    _swap_items(lowered, launches[1], launches[2])
    return validate_schedule(lowered)


def mutant_move_consumer_cross_stream(tiny_scrnn):
    """Move dependent launches onto different streams without adding
    events -- the cross-stream variant of the reorder mutant."""
    lowered = lower_diamond()
    launches = _launch_indices(lowered)
    consumer = launches[-1]
    lowered.items[consumer] = replace(lowered.items[consumer], stream=1)
    return validate_schedule(lowered)


def mutant_drop_all_waits_at_scale(tiny_scrnn):
    """Strip every wait from a two-stream sCRNN schedule."""
    lowered = lower_scrnn_two_streams(tiny_scrnn)
    stripped = 0
    for idx in _launch_indices(lowered, lambda item: item.waits):
        lowered.items[idx] = replace(lowered.items[idx], waits=())
        stripped += 1
    assert stripped > 0
    return validate_schedule(lowered)


def mutant_wait_cycle_deadlock(tiny_scrnn):
    """Make the producer wait on an event only its consumer records."""
    lowered = lower_diamond(stream_of={0: 0, 1: 1, 2: 0})
    waiters = _launch_indices(lowered, lambda item: item.waits)
    recorders = _launch_indices(lowered, lambda item: item.record is not None)
    assert waiters and recorders
    poison = EventId(9999, "mutant")
    consumer, producer = waiters[0], recorders[0]
    lowered.items[consumer] = replace(
        lowered.items[consumer], record=poison, record_is_profiling=False
    )
    lowered.items[producer] = replace(
        lowered.items[producer],
        waits=lowered.items[producer].waits + (poison,),
    )
    return validate_schedule(lowered)


def mutant_free_buffer_early(tiny_scrnn):
    """Free the left matmul's output right after it is produced, while the
    add still reads it."""
    graph, units = _diamond()
    lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=False))
    hb = HappensBefore(lowered.items, lowered.item_units)
    a_nid = units[0].node_ids[0]
    producer_item = next(
        idx for idx, uid in sorted(lowered.item_units.items()) if uid == 0
    )
    report = ValidationReport()
    check_frees(
        graph, lowered.plan, [FreeEvent(a_nid, producer_item)],
        lowered.item_units, hb, report,
    )
    return report


def mutant_double_free(tiny_scrnn):
    """Issue a correct free list, then free one buffer a second time."""
    graph, units = _diamond()
    lowered = Dispatcher(graph).lower(ExecutionPlan(units=units, profile=False))
    hb = HappensBefore(lowered.items, lowered.item_units)
    frees = derive_frees(graph, lowered.plan, lowered.item_units, hb)
    assert frees, "diamond has freeable intermediates"
    report = ValidationReport()
    check_frees(
        graph, lowered.plan, frees + [frees[0]], lowered.item_units, hb, report
    )
    return report


def _two_group_allocation():
    graph, units = _diamond()
    a, b, c = (u.node_ids[0] for u in units)
    x = graph.node(a).input_ids[0]
    return graph, AllocationPlan(
        graph,
        groups=[
            ContiguityGroup(node_ids=(a, b), label="outputs"),
            ContiguityGroup(node_ids=(x, c), label="ends"),
        ],
    )


def mutant_overlap_contiguity_groups(tiny_scrnn):
    """Slide the second group back onto the first group's bytes."""
    graph, allocation = _two_group_allocation()
    first = allocation.groups[0].node_ids[0]
    shift = allocation.offset_of(allocation.groups[1].node_ids[0]) - (
        allocation.offset_of(first) + graph.node(first).spec.size_bytes // 2
    )
    for nid in allocation.groups[1].node_ids:
        allocation._offsets[nid] -= shift
    report = ValidationReport()
    check_arena_layout(allocation, report)
    return report


def mutant_break_group_contiguity(tiny_scrnn):
    """Tear one member out of its group (far past the arena: no overlap,
    pure contiguity break)."""
    _graph, allocation = _two_group_allocation()
    member = allocation.groups[0].node_ids[1]
    allocation._offsets[member] = allocation.arena_size_bytes + (1 << 20)
    report = ValidationReport()
    check_arena_layout(allocation, report)
    return report


def mutant_alias_unordered_lifetimes(tiny_scrnn):
    """Hand the reuse checker a plan that aliases the two concurrent
    matmul outputs of a cross-stream diamond."""
    from repro.check import check_reuse_plan
    from repro.gpu.liveness import ReusePlan

    graph, units = _diamond()
    plan = ExecutionPlan(
        units=units, stream_of={0: 0, 1: 1, 2: 0}, profile=False
    )
    lowered = Dispatcher(graph).lower(plan)
    hb = HappensBefore(lowered.items, lowered.item_units)
    a, b = units[0].node_ids[0], units[1].node_ids[0]
    # a and b are written concurrently on streams 0 and 1: same offset =
    # write-write aliasing with unordered lifetimes
    offsets = {a: 0, b: 0}
    reuse = ReusePlan(offsets=offsets, peak_bytes=4096, naive_bytes=8192)
    report = ValidationReport()
    check_reuse_plan(
        graph, lowered.plan, reuse, lowered.item_units, hb, report
    )
    return report


MUTANTS = {
    "drop-wait": (mutant_drop_wait, RAW_RACE),
    "drop-record": (mutant_drop_record, MISSING_EVENT),
    "swap-dependent-launches": (mutant_swap_dependent_launches, RAW_RACE),
    "move-consumer-cross-stream": (mutant_move_consumer_cross_stream, RAW_RACE),
    "drop-all-waits-scrnn": (mutant_drop_all_waits_at_scale, RAW_RACE),
    "wait-cycle": (mutant_wait_cycle_deadlock, DEADLOCK),
    "free-buffer-early": (mutant_free_buffer_early, USE_WHILE_FREED),
    "double-free": (mutant_double_free, DOUBLE_FREE),
    "overlap-contiguity-groups": (mutant_overlap_contiguity_groups, GROUP_OVERLAP),
    "break-group-contiguity": (mutant_break_group_contiguity, GROUP_BROKEN),
    "alias-unordered-lifetimes": (mutant_alias_unordered_lifetimes, WAR_RACE),
}


# ---------------------------------------------------------------------------
# the tests
# ---------------------------------------------------------------------------


def test_baselines_are_valid(tiny_scrnn):
    """The schedules the mutants start from must themselves be clean --
    otherwise a mutant could be 'caught' for the wrong reason."""
    for lowered in (
        lower_diamond(),
        lower_diamond(stream_of={0: 0, 1: 1, 2: 0}),
        lower_scrnn_two_streams(tiny_scrnn),
    ):
        report = validate_schedule(lowered)
        assert report.ok, report.summary()


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_mutant_is_caught_with_right_kind(name, tiny_scrnn):
    build_report, expected_kind = MUTANTS[name]
    report = build_report(tiny_scrnn)
    assert not report.ok, f"mutant {name!r} survived the validator"
    assert expected_kind in report.kinds(), (
        f"mutant {name!r} flagged as {sorted(report.kinds())}, "
        f"expected {expected_kind!r}"
    )


def test_zero_surviving_mutants(tiny_scrnn):
    """The aggregate guarantee the CI job asserts by name."""
    survivors = [
        name
        for name, (build_report, _kind) in sorted(MUTANTS.items())
        if build_report(tiny_scrnn).ok
    ]
    assert survivors == []


def test_violations_name_offending_units(tiny_scrnn):
    """Race reports must attribute both endpoints of the unordered edge."""
    report = mutant_drop_wait(tiny_scrnn)
    races = [v for v in report.violations if v.kind == RAW_RACE]
    assert all(len(v.unit_ids) == 2 for v in races)
    assert {1, 2} in [set(v.unit_ids) for v in races]
