"""Golden-schedule regression tests.

The dispatcher's native lowering of sCRNN and miLSTM (tiny config) is
pinned as JSON under ``tests/data/``.  Any change to lowering order,
event insertion, stream assignment, or unit attribution shows up as a
structural diff here -- and every golden must also pass the deep
validator, so the pinned schedules are known-correct, not just
known-stable.

Regenerating after an *intentional* lowering change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/check/test_golden.py

then review the diff of ``tests/data/golden_schedule_*.json`` like any
other code change.
"""

import json
import os
from pathlib import Path

import pytest

from repro.baselines.native import native_plan
from repro.check import validate_schedule
from repro.runtime import Dispatcher
from repro.serialize import schedule_to_dict

DATA_DIR = Path(__file__).resolve().parent.parent / "data"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


def _check_golden(name: str, payload: dict) -> None:
    path = DATA_DIR / f"{name}.json"
    if REGEN:
        DATA_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing; generate it with "
            "REPRO_REGEN_GOLDEN=1 (see module docstring)"
        )
    assert payload == json.loads(path.read_text()), (
        f"lowered schedule diverged from {path.name}; if the lowering "
        "change is intentional, regenerate with REPRO_REGEN_GOLDEN=1 "
        "and review the diff"
    )


def _native_lowering(model):
    graph = model.graph
    return Dispatcher(graph).lower(native_plan(graph))


@pytest.mark.parametrize("model_fixture", ["tiny_scrnn", "tiny_milstm"])
def test_native_schedule_matches_golden(model_fixture, request):
    model = request.getfixturevalue(model_fixture)
    lowered = _native_lowering(model)
    report = validate_schedule(lowered, deep=True, label=f"{model.name}/golden")
    assert report.ok, report.summary()
    _check_golden(f"golden_schedule_{model.name}", schedule_to_dict(lowered))


def test_golden_covers_every_unit(tiny_scrnn):
    """Sanity on the serialization itself: each launch row carries its
    emitting unit, and together they cover the whole plan."""
    lowered = _native_lowering(tiny_scrnn)
    payload = schedule_to_dict(lowered)
    launch_units = {
        row["unit"] for row in payload["items"] if row["type"] == "launch"
    }
    assert None not in launch_units
    assert launch_units == {u.unit_id for u in lowered.plan.units}
