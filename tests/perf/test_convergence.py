"""Convergence equivalence: pruned exploration must pick the *same*
winning configuration and the *same* final epoch time as exhaustive
(``--no-prune``) exploration -- the acceptance invariant of the fast
path, pinned on both bundled RNN models and both GPU generations."""

import pytest

from repro.core.session import AstraSession
from repro.gpu import DEVICES
from repro.models import ModelConfig, build_milstm, build_scrnn
from repro.perf import FastPath

CONFIG = ModelConfig(batch_size=4, seq_len=3, hidden_size=32, embed_size=32,
                     vocab_size=50)
BUILDERS = {"scrnn": build_scrnn, "milstm": build_milstm}


def _optimize(model, device, fast, features):
    return AstraSession(
        model, device=device, features=features, seed=0, fast=fast
    ).optimize(max_minibatches=400)


@pytest.mark.parametrize("device_name", ["P100", "V100"])
@pytest.mark.parametrize("model_name", ["scrnn", "milstm"])
@pytest.mark.parametrize("features", ["FK", "all"])
def test_pruned_equals_exhaustive(model_name, device_name, features):
    model = BUILDERS[model_name](CONFIG)
    device = DEVICES[device_name]
    exhaustive = _optimize(
        model, device, FastPath(cache=True, prune=False), features
    )
    pruned = _optimize(
        model, device, FastPath(cache=True, prune=True), features
    )

    assert pruned.best_time_us == exhaustive.best_time_us, (
        f"{model_name}/{device_name}/{features}: final epoch time diverged"
    )
    assert pruned.astra.assignment == exhaustive.astra.assignment, (
        f"{model_name}/{device_name}/{features}: winning configuration diverged"
    )
    assert (
        pruned.astra.best_strategy.strategy_id
        == exhaustive.astra.best_strategy.strategy_id
    )
    # pruning must actually have engaged (otherwise this test is vacuous)
    assert pruned.astra.fast_path["choices_pruned"] > 0
    # and spent strictly fewer mini-batches discovering the same winner
    assert pruned.configs_explored <= exhaustive.configs_explored


def test_cache_alone_changes_nothing(tiny_scrnn):
    """The cache-only fast path (the library default) is behaviourally
    invisible: identical report, identical exploration trajectory."""
    plain = _optimize(tiny_scrnn, DEVICES["P100"],
                      FastPath(cache=False, prune=False), "all")
    cached = _optimize(tiny_scrnn, DEVICES["P100"],
                       FastPath(cache=True, prune=False), "all")
    assert cached.best_time_us == plain.best_time_us
    assert cached.astra.assignment == plain.astra.assignment
    assert cached.configs_explored == plain.configs_explored
    assert cached.astra.fast_path["cache"]["hit_rate"] > 0.0
