"""The ``repro bench`` harness: document schema and exactness gates.

Deliberately absent: any assertion on the configs/sec *ratio* -- wall
clock on a shared test machine is noise, and the ratio gate belongs to
the full-scale ``repro bench`` run, not the unit suite.  What is pinned:
the schema, the winner-equivalence verdicts, cache effectiveness, and
the failure wiring.
"""

import json

import pytest

from repro.perf.bench import (
    PRIMARY_VARIANT,
    bench_model,
    render_bench,
    timed_session_run,
)
from repro.perf.ranker import FastPath


@pytest.fixture(scope="module")
def quick_doc():
    return bench_model("scrnn", batch=4, seq_len=3, budget=200, quick=True)


class TestBenchModel:
    def test_quick_doc_schema_and_ok(self, quick_doc):
        doc = quick_doc
        assert doc["ok"] is True
        assert doc["failures"] == []
        assert doc["quick"] is True
        assert doc["model"] == "scrnn"
        assert doc["primary_variant"] == PRIMARY_VARIANT
        assert set(doc["variants"]) == {PRIMARY_VARIANT}
        json.dumps(doc)  # fully serializable as-is

    def test_variant_record_fields(self, quick_doc):
        vdoc = quick_doc["variants"][PRIMARY_VARIANT]
        assert vdoc["winner_match"] is True
        assert vdoc["assignment_match"] is True
        assert vdoc["best_time_match"] is True
        assert vdoc["cache_hit_rate"] > 0.0
        for leg in ("baseline", "fast"):
            rec = vdoc[leg]
            assert rec["wall_s"] > 0
            assert rec["choices_total"] > 0
            assert rec["configs_per_sec"] > 0
            assert rec["best_time_us"] > 0
            # exclusive phase accounting: phases sum to the timed wall
            assert sum(rec["phases_s"].values()) == pytest.approx(
                rec["wall_s"], rel=0.05, abs=0.05
            )
        assert vdoc["baseline"]["cache"] is None
        assert vdoc["fast"]["cache"]["hit_rate"] > 0.0
        assert vdoc["fast"]["choices_pruned"] > 0
        assert vdoc["baseline"]["choices_pruned"] == 0
        # same search space on both legs: the ratio numerator is shared
        assert vdoc["baseline"]["choices_total"] == vdoc["fast"]["choices_total"]

    def test_warm_leg_fields_and_gates(self, quick_doc):
        """The warm leg (docs/serving.md) runs even in quick mode, and
        its deterministic gates held: identical winner, at most half the
        cold measurements, non-zero seeding."""
        vdoc = quick_doc["variants"][PRIMARY_VARIANT]
        warm = vdoc["warm"]
        assert warm["wall_s"] > 0
        assert warm["warm"]["seeded_entries"] > 0
        assert vdoc["warm_seeded_entries"] == warm["warm"]["seeded_entries"]
        assert vdoc["warm_winner_match"] is True
        assert vdoc["warm_speedup"] > 0
        assert vdoc["warm_configs_fraction"] <= quick_doc["warm_configs_target"]
        assert warm["configs_explored"] <= (
            quick_doc["warm_configs_target"] * vdoc["fast"]["configs_explored"]
        )
        assert warm["best_time_us"] == vdoc["fast"]["best_time_us"]
        # cold legs carry an empty warm block, not a missing one
        assert vdoc["fast"]["warm"] == {}
        assert vdoc["baseline"]["warm"] == {}

    def test_render_is_human_readable(self, quick_doc):
        text = render_bench(quick_doc)
        assert "bench scrnn" in text
        assert PRIMARY_VARIANT in text
        assert "match" in text
        assert "warm (store):" in text
        assert "FAILURES" not in text

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            bench_model("not_a_model", quick=True)

    def test_quick_waives_timing_gate_only(self, quick_doc):
        """quick mode must not gate on configs/sec, but keeps exactness."""
        assert "speedup_target" in quick_doc
        assert all("below the" not in f for f in quick_doc["failures"])


class TestTimedSessionRun:
    def test_cold_start_and_phase_coverage(self, tiny_scrnn):
        from repro.gpu import libraries
        from repro.perf import signature

        run = timed_session_run(
            tiny_scrnn, features="FK", seed=0, budget=60,
            fast=FastPath(cache=True, prune=False),
        )
        # the run warms the process memos from a guaranteed-cold start
        assert libraries._PLAN_MEMO
        assert signature._KERNEL_KEY_MEMO
        rec = run.record()
        assert rec["cache"]["hit_rate"] > 0.0
        assert {"lower", "enumerate"} <= set(rec["phases_s"])
        assert rec["phase_total_s"] == pytest.approx(rec["wall_s"], rel=0.05,
                                                     abs=0.05)

    def test_baseline_leg_reports_no_cache(self, tiny_scrnn):
        run = timed_session_run(
            tiny_scrnn, features="FK", seed=0, budget=60,
            fast=FastPath(cache=False, prune=False),
        )
        rec = run.record()
        assert rec["cache"] is None
        assert rec["choices_pruned"] == 0
        assert rec["choices_total"] > 0
