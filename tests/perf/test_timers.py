"""PhaseClock: exclusive nesting accounting and the null-object default."""

import time

from repro.perf import NULL_CLOCK, PhaseClock
from repro.perf.timers import _NullClock


class TestPhaseClock:
    def test_single_phase_records_time_and_count(self):
        clock = PhaseClock()
        with clock.phase("work"):
            time.sleep(0.01)
        assert clock.seconds["work"] >= 0.009
        assert clock.counts["work"] == 1

    def test_nested_phase_is_exclusive(self):
        """A nested phase pauses the enclosing one: the inner sleep must
        be charged to the inner phase only."""
        clock = PhaseClock()
        with clock.phase("outer"):
            time.sleep(0.005)
            with clock.phase("inner"):
                time.sleep(0.02)
            time.sleep(0.005)
        assert clock.seconds["inner"] >= 0.018
        # outer gets only its own ~10ms, never the inner 20ms
        assert clock.seconds["outer"] < 0.018
        assert clock.counts == {"outer": 1, "inner": 1}

    def test_phases_sum_to_timed_wall(self):
        clock = PhaseClock()
        start = time.perf_counter()
        with clock.phase("a"):
            time.sleep(0.004)
            with clock.phase("b"):
                time.sleep(0.004)
            with clock.phase("c"):
                time.sleep(0.004)
        wall = time.perf_counter() - start
        assert abs(clock.total_s - wall) < 0.005
        assert set(clock.seconds) == {"a", "b", "c"}

    def test_reentry_accumulates(self):
        clock = PhaseClock()
        for _ in range(3):
            with clock.phase("hot"):
                pass
        assert clock.counts["hot"] == 3
        assert clock.seconds["hot"] >= 0.0

    def test_exception_still_closes_phase(self):
        clock = PhaseClock()
        try:
            with clock.phase("outer"):
                with clock.phase("boom"):
                    raise RuntimeError("x")
        except RuntimeError:
            pass
        assert clock.counts == {"outer": 1, "boom": 1}
        assert not clock._stack

    def test_snapshot_shape(self):
        clock = PhaseClock()
        with clock.phase("a"):
            pass
        snap = clock.snapshot()
        assert snap["total_s"] == clock.total_s
        assert snap["phases"]["a"]["count"] == 1


class TestNullClock:
    def test_phase_is_noop_context(self):
        with NULL_CLOCK.phase("anything") as c:
            assert c is NULL_CLOCK
        assert NULL_CLOCK.seconds == {}
        assert NULL_CLOCK.total_s == 0.0
        assert NULL_CLOCK.snapshot() == {"total_s": 0.0, "phases": {}}

    def test_shared_instance(self):
        assert isinstance(NULL_CLOCK, _NullClock)
