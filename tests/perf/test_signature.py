"""Plan-signature properties (satellite of the compilation cache).

Pinned here:

* **injectivity on distinct plans** -- any structural mutation (epoch
  coordinates, stream map, dispatch order, barriers, profiling set, unit
  set, unit labels) produces a different :func:`plan_key`;
* **stability** -- re-building the identical plan (same enumerator or a
  fresh one) produces the identical key, and the serializable
  :class:`PlanSignature` survives ``dumps``/``loads`` round-trips;
* **deliberate blindness** -- ``plan.label`` is cosmetic and excluded.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AstraFeatures, Enumerator
from repro.gpu import P100
from repro.perf import PlanSignature, plan_key, plan_signature, structure_key


@pytest.fixture(scope="module")
def built(tiny_scrnn):
    enum = Enumerator(tiny_scrnn.graph, P100, AstraFeatures.preset("FK"))
    strategy = enum.strategies[0]
    tree = enum.build_fk_tree(strategy)
    tree.initialize()
    return enum, strategy, tree.assignment()


@pytest.fixture(scope="module")
def base_plan(built):
    enum, strategy, assignment = built
    return enum.build_plan(strategy, assignment).plan


MUTATIONS = (
    "epoch", "super_epoch", "unit_label", "drop_unit",
    "stream", "barrier", "profile_flag", "profile_ids", "dispatch_order",
)


def _mutate(plan, kind: str, idx: int):
    """Apply one guaranteed-structural mutation; returns the mutant."""
    units = list(plan.units)
    unit = units[idx % len(units)]
    if kind == "epoch":
        units[idx % len(units)] = dataclasses.replace(unit, epoch=unit.epoch + 1)
        return dataclasses.replace(plan, units=units)
    if kind == "super_epoch":
        units[idx % len(units)] = dataclasses.replace(
            unit, super_epoch=unit.super_epoch + 1
        )
        return dataclasses.replace(plan, units=units)
    if kind == "unit_label":
        units[idx % len(units)] = dataclasses.replace(
            unit, label=unit.label + "~mutated"
        )
        return dataclasses.replace(plan, units=units)
    if kind == "drop_unit":
        if len(units) <= 1:
            return None
        del units[idx % len(units)]
        return dataclasses.replace(plan, units=units)
    if kind == "stream":
        stream_of = dict(plan.stream_of)
        stream_of[unit.unit_id] = plan.stream(unit.unit_id) + 1
        return dataclasses.replace(plan, stream_of=stream_of)
    if kind == "barrier":
        if unit.unit_id in plan.barriers_after:
            return None
        return dataclasses.replace(
            plan, barriers_after=plan.barriers_after | {unit.unit_id}
        )
    if kind == "profile_flag":
        return dataclasses.replace(plan, profile=not plan.profile)
    if kind == "profile_ids":
        ids = frozenset({unit.unit_id})
        if plan.profile_unit_ids == ids:
            return None
        return dataclasses.replace(plan, profile_unit_ids=ids)
    if kind == "dispatch_order":
        order = [u.unit_id for u in reversed(plan.units)]
        if plan.dispatch_order == order:
            return None
        return dataclasses.replace(plan, dispatch_order=order)
    raise AssertionError(kind)


class TestInjectivity:
    @settings(max_examples=60, deadline=None)
    @given(kind=st.sampled_from(MUTATIONS), idx=st.integers(0, 200))
    def test_structural_mutation_changes_key(self, base_plan, kind, idx):
        mutant = _mutate(base_plan, kind, idx)
        if mutant is None:  # mutation was a no-op for this plan
            return
        assert plan_key(mutant) != plan_key(base_plan)
        assert plan_signature(mutant).digest != plan_signature(base_plan).digest

    def test_plan_label_is_excluded(self, base_plan):
        relabeled = dataclasses.replace(base_plan, label="astra/production")
        assert plan_key(relabeled) == plan_key(base_plan)
        assert plan_signature(relabeled) == plan_signature(base_plan)

    def test_kernel_field_change_changes_key(self, base_plan):
        idx = next(
            i for i, u in enumerate(base_plan.units) if u.kernel is not None
        )
        unit = base_plan.units[idx]
        field = dataclasses.fields(unit.kernel)[0].name
        mutated_kernel = dataclasses.replace(
            unit.kernel, **{field: getattr(unit.kernel, field)}
        )
        # identical field values => identical key, even for a distinct object
        units = list(base_plan.units)
        units[idx] = dataclasses.replace(unit, kernel=mutated_kernel)
        assert plan_key(dataclasses.replace(base_plan, units=units)) == plan_key(
            base_plan
        )


class TestStability:
    def test_rebuild_same_assignment_same_key(self, built):
        enum, strategy, assignment = built
        first = enum.build_plan(strategy, assignment).plan
        second = enum.build_plan(strategy, assignment).plan
        assert first is not second
        assert plan_key(first) == plan_key(second)
        assert plan_signature(first) == plan_signature(second)

    def test_fresh_enumerator_same_key(self, built, tiny_scrnn):
        """No hidden dependence on object identity or cache warmth: a
        brand-new enumerator over the same graph signs identically."""
        enum, strategy, assignment = built
        fresh = Enumerator(tiny_scrnn.graph, P100, AstraFeatures.preset("FK"))
        fresh_strategy = next(
            s for s in fresh.strategies if s.strategy_id == strategy.strategy_id
        )
        a = enum.build_plan(strategy, assignment).plan
        b = fresh.build_plan(fresh_strategy, assignment).plan
        assert plan_key(a) == plan_key(b)
        assert plan_signature(a) == plan_signature(b)

    @settings(max_examples=30, deadline=None)
    @given(kind=st.sampled_from(MUTATIONS), idx=st.integers(0, 200))
    def test_dumps_loads_round_trip(self, base_plan, kind, idx):
        plan = _mutate(base_plan, kind, idx) or base_plan
        sig = plan_signature(plan)
        again = PlanSignature.loads(sig.dumps())
        assert again == sig
        assert PlanSignature.loads(again.dumps()) == sig

    def test_loads_rejects_corrupt_digest(self, base_plan):
        sig = plan_signature(base_plan)
        bad = dataclasses.replace(sig, digest="0" * 64)
        with pytest.raises(ValueError, match="digest"):
            PlanSignature.loads(bad.dumps())

    def test_loads_rejects_unknown_version(self, base_plan):
        text = plan_signature(base_plan).dumps().replace('"version": 1', '"version": 9')
        with pytest.raises(ValueError, match="version"):
            PlanSignature.loads(text)


class TestStructureKey:
    def test_blind_to_kernel_parameters_and_streams(self, base_plan):
        """The coarse tier keys only what deps/order read: unit ids, node
        coverage, kernel presence, and dispatch order."""
        restreamed = dataclasses.replace(
            base_plan,
            stream_of={u.unit_id: 1 for u in base_plan.units},
            barriers_after=frozenset({base_plan.units[0].unit_id}),
            profile=not base_plan.profile,
        )
        assert structure_key(restreamed) == structure_key(base_plan)
        assert plan_key(restreamed) != plan_key(base_plan)

    def test_sees_unit_set_and_order(self, base_plan):
        dropped = _mutate(base_plan, "drop_unit", 0)
        reordered = _mutate(base_plan, "dispatch_order", 0)
        assert structure_key(dropped) != structure_key(base_plan)
        assert structure_key(reordered) != structure_key(base_plan)
