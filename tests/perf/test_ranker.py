"""The cost-model pre-ranker: estimate exactness and pruning invariants.

The admissibility argument (see ``repro/perf/ranker.py``): at base clock
with no fault injector, the ``"units"`` metric the wirer measures for a
choice is computable analytically -- so the test demands the estimate
match the *actually recorded* profile value to float precision, and the
pruner must refuse to run whenever that argument does not apply.
"""

import pytest

from repro.core.session import AstraSession
from repro.gpu import P100
from repro.gpu.device import CLOCK_AUTOBOOST
from repro.obs import MetricsRegistry
from repro.perf import FastPath, estimate_choice_us, prune_fk_tree


def _explored_wirer(model, budget=400):
    """Run an exhaustive (no-prune) exploration and hand back the wirer,
    whose profile index now holds every choice's measured value."""
    session = AstraSession(
        model, features="FK", seed=0, fast=FastPath(cache=True, prune=False)
    )
    session.optimize(max_minibatches=budget)
    return session.wirer


def _coupled(enum, tree):
    names = {v.name for v in tree.variables()}
    return {
        v.name
        for v in tree.variables()
        if v.name.startswith("ladder:")
        and enum.member_unfused_kernel_vars(v.payload) & names
    }


class TestEstimateExactness:
    @pytest.mark.parametrize("fixture", ["tiny_scrnn", "tiny_sublstm"])
    def test_estimate_equals_measured(self, fixture, request):
        model = request.getfixturevalue(fixture)
        wirer = _explored_wirer(model)
        enum = wirer.enumerator
        strategy = enum.strategies[0]
        context = wirer.base_context + strategy.context_key()
        tree = enum.build_fk_tree(strategy)
        tree.initialize()
        coupled = _coupled(enum, tree)
        checked = 0
        for var in tree.variables():
            if var.metric_kind != "units" or var.name in coupled:
                continue
            for choice in var.choices:
                measured = var.get_profile_value(wirer.index, context, choice)
                if measured is None:
                    continue
                estimate = estimate_choice_us(enum, strategy, var, choice, P100)
                assert estimate == pytest.approx(measured, rel=1e-9), (
                    f"{var.name}={choice!r}: estimate {estimate} "
                    f"vs measured {measured}"
                )
                checked += 1
        assert checked > 10  # the exploration must actually cover choices


class TestPruneInvariants:
    def _tree(self, model):
        from repro.core import AstraFeatures, Enumerator

        enum = Enumerator(model.graph, P100, AstraFeatures.preset("FK"))
        strategy = enum.strategies[0]
        tree = enum.build_fk_tree(strategy)
        tree.initialize()
        return enum, strategy, tree

    def test_argmin_survives_and_order_preserved(self, tiny_scrnn):
        enum, strategy, tree = self._tree(tiny_scrnn)
        originals = {v.name: list(v.choices) for v in tree.variables()}
        estimates = {
            v.name: [
                estimate_choice_us(enum, strategy, v, c, P100) for c in v.choices
            ]
            for v in tree.variables()
            if v.metric_kind == "units"
        }
        fast = FastPath(prune=True)
        pruned = prune_fk_tree(enum, strategy, tree, P100, fast)
        assert pruned > 0
        total_removed = 0
        for var in tree.variables():
            before = originals[var.name]
            total_removed += len(before) - len(var.choices)
            # survivors are a subsequence of the original choice order
            it = iter(before)
            assert all(any(c == x for x in it) for c in var.choices)
            if var.name in estimates:
                best = before[min(
                    range(len(before)), key=lambda i: estimates[var.name][i]
                )]
                assert best in var.choices, f"argmin pruned from {var.name}"
        assert total_removed == pruned

    def test_keep_floor_bounds_pruning(self, tiny_scrnn):
        enum, strategy, tree = self._tree(tiny_scrnn)
        originals = {v.name: len(v.choices) for v in tree.variables()}
        # a pathological margin that would prune everything but the argmin
        fast = FastPath(prune=True, prune_fraction=0.5, prune_margin=0.0)
        prune_fk_tree(enum, strategy, tree, P100, fast)
        for var in tree.variables():
            n = originals[var.name]
            keep_floor = max(1, n - int(0.5 * n))
            assert len(var.choices) >= keep_floor

    def test_injector_disables_pruning(self, tiny_scrnn):
        enum, strategy, tree = self._tree(tiny_scrnn)
        before = {v.name: list(v.choices) for v in tree.variables()}
        metrics = MetricsRegistry()
        pruned = prune_fk_tree(
            enum, strategy, tree, P100, FastPath(prune=True),
            metrics=metrics, injector=object(),
        )
        assert pruned == 0
        assert {v.name: list(v.choices) for v in tree.variables()} == before
        assert metrics.counter("perf.prune.skipped_inexact").value == 1

    def test_autoboost_clock_disables_pruning(self, tiny_scrnn):
        enum, strategy, tree = self._tree(tiny_scrnn)
        metrics = MetricsRegistry()
        boosted = P100.with_clock(CLOCK_AUTOBOOST)
        pruned = prune_fk_tree(
            enum, strategy, tree, boosted, FastPath(prune=True), metrics=metrics
        )
        assert pruned == 0
        assert metrics.counter("perf.prune.skipped_inexact").value == 1

    def test_coupled_ladder_vars_never_pruned(self, tiny_sublstm):
        """A ladder whose unfused GEMM library is decided by a concurrent
        kernel variable has no exact analytic estimate: its choices must
        come through pruning untouched."""
        enum, strategy, tree = self._tree(tiny_sublstm)
        coupled = _coupled(enum, tree)
        assert coupled  # sublstm is known to exhibit the coupling
        before = {name: list(v.choices) for name in coupled
                  for v in tree.variables() if v.name == name}
        metrics = MetricsRegistry()
        prune_fk_tree(
            enum, strategy, tree, P100, FastPath(prune=True), metrics=metrics
        )
        for var in tree.variables():
            if var.name in coupled:
                assert list(var.choices) == before[var.name]
        assert metrics.counter("perf.prune.skipped_coupled").value == len(coupled)

    def test_tree_reinitialized_after_prune(self, tiny_scrnn):
        enum, strategy, tree = self._tree(tiny_scrnn)
        prune_fk_tree(enum, strategy, tree, P100, FastPath(prune=True))
        # the pruned tree must still produce a complete assignment
        assignment = tree.assignment()
        assert assignment
        for var in tree.variables():
            assert var.value in var.choices
