"""Tests for the bench regression gate (``repro bench --compare``)."""

import copy
import json
import pathlib

import pytest

from repro.perf.bench import REGRESSION_THRESHOLD, compare_bench, render_compare

RESULTS = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"


def _doc(model="scrnn", ratio=2.0, winner="plan-a", cfg_s=1000.0, hit=0.5):
    return {
        "version": 2,
        "model": model,
        "variants": {
            "FK": {
                "configs_per_sec_ratio": ratio,
                "winning_assignment": winner,
                "cache_hit_rate": hit,
                "fast": {"configs_per_sec": cfg_s},
                "baseline": {"configs_per_sec": cfg_s / ratio},
            },
        },
    }


class TestCompareBench:
    def test_identical_docs_pass(self):
        doc = _doc()
        diff = compare_bench(doc, copy.deepcopy(doc))
        assert diff["ok"]
        assert diff["failures"] == []
        assert diff["variants"]["FK"]["winner_match"]
        assert diff["variants"]["FK"]["ratio_drop"] == pytest.approx(0.0)

    def test_winner_change_fails(self):
        diff = compare_bench(_doc(winner="plan-b"), _doc(winner="plan-a"))
        assert not diff["ok"]
        assert any("winning assignment changed" in msg for msg in diff["failures"])

    def test_ratio_regression_beyond_threshold_fails(self):
        current = _doc(ratio=2.0 * (1 - REGRESSION_THRESHOLD) * 0.95)
        diff = compare_bench(current, _doc(ratio=2.0))
        assert not diff["ok"]
        assert any("regressed" in msg for msg in diff["failures"])

    def test_ratio_drop_within_threshold_passes(self):
        current = _doc(ratio=2.0 * (1 - REGRESSION_THRESHOLD) * 1.05)
        diff = compare_bench(current, _doc(ratio=2.0))
        assert diff["ok"]

    def test_ratio_improvement_passes(self):
        diff = compare_bench(_doc(ratio=3.0), _doc(ratio=2.0))
        assert diff["ok"]
        assert diff["variants"]["FK"]["ratio_drop"] < 0.0

    def test_absolute_throughput_is_informational_only(self):
        # 10x slower machine, same relative speedup: must still pass
        diff = compare_bench(_doc(cfg_s=100.0), _doc(cfg_s=1000.0))
        assert diff["ok"]
        assert diff["variants"]["FK"]["configs_per_sec_current"] == 100.0
        assert diff["variants"]["FK"]["configs_per_sec_baseline"] == 1000.0

    def test_no_shared_variants_fails(self):
        baseline = _doc()
        baseline["variants"] = {"all": baseline["variants"]["FK"]}
        diff = compare_bench(_doc(), baseline)
        assert not diff["ok"]
        assert any("no shared variants" in msg for msg in diff["failures"])

    def test_render_names_failures(self):
        diff = compare_bench(_doc(winner="plan-b"), _doc(winner="plan-a"))
        text = render_compare(diff)
        assert "FAILURES" in text
        assert "CHANGED" in text

    def test_render_clean_diff(self):
        doc = _doc()
        text = render_compare(compare_bench(doc, copy.deepcopy(doc)))
        assert "FAILURES" not in text
        assert "match" in text


class TestCommittedBaselines:
    @pytest.mark.parametrize("name", ["BENCH_scrnn.json", "BENCH_milstm.json"])
    def test_baseline_self_compare_is_clean(self, name):
        doc = json.loads((RESULTS / name).read_text())
        diff = compare_bench(copy.deepcopy(doc), doc)
        assert diff["ok"], diff["failures"]
        assert diff["variants"], "committed baseline must expose variants"
