"""Tests for the bench regression gate (``repro bench --compare``)."""

import copy
import json
import pathlib

import pytest

from repro.perf.bench import REGRESSION_THRESHOLD, compare_bench, render_compare

RESULTS = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"


def _doc(model="scrnn", ratio=2.0, winner="plan-a", cfg_s=1000.0, hit=0.5,
         warm=None, warm_match=True, learned=None, learned_match=True):
    """A version-2 document; pass ``warm`` (a warm_speedup) for version 3,
    ``learned`` (a learned_speedup) for version 4."""
    doc = {
        "version": 2,
        "model": model,
        "variants": {
            "FK": {
                "configs_per_sec_ratio": ratio,
                "winning_assignment": winner,
                "cache_hit_rate": hit,
                "fast": {"configs_per_sec": cfg_s},
                "baseline": {"configs_per_sec": cfg_s / ratio},
            },
        },
    }
    if warm is not None:
        doc["version"] = 3
        doc["variants"]["FK"]["warm_speedup"] = warm
        doc["variants"]["FK"]["warm_winner_match"] = warm_match
        doc["variants"]["FK"]["warm_configs_fraction"] = 0.0
    if learned is not None:
        doc["version"] = 4
        doc["variants"]["FK"]["learned_speedup"] = learned
        doc["variants"]["FK"]["learned_winner_match"] = learned_match
        doc["variants"]["FK"]["learned_configs_fraction"] = 0.2
    return doc


class TestCompareBench:
    def test_identical_docs_pass(self):
        doc = _doc()
        diff = compare_bench(doc, copy.deepcopy(doc))
        assert diff["ok"]
        assert diff["failures"] == []
        assert diff["variants"]["FK"]["winner_match"]
        assert diff["variants"]["FK"]["ratio_drop"] == pytest.approx(0.0)

    def test_winner_change_fails(self):
        diff = compare_bench(_doc(winner="plan-b"), _doc(winner="plan-a"))
        assert not diff["ok"]
        assert any("winning assignment changed" in msg for msg in diff["failures"])

    def test_ratio_regression_beyond_threshold_fails(self):
        current = _doc(ratio=2.0 * (1 - REGRESSION_THRESHOLD) * 0.95)
        diff = compare_bench(current, _doc(ratio=2.0))
        assert not diff["ok"]
        assert any("regressed" in msg for msg in diff["failures"])

    def test_ratio_drop_within_threshold_passes(self):
        current = _doc(ratio=2.0 * (1 - REGRESSION_THRESHOLD) * 1.05)
        diff = compare_bench(current, _doc(ratio=2.0))
        assert diff["ok"]

    def test_ratio_improvement_passes(self):
        diff = compare_bench(_doc(ratio=3.0), _doc(ratio=2.0))
        assert diff["ok"]
        assert diff["variants"]["FK"]["ratio_drop"] < 0.0

    def test_absolute_throughput_is_informational_only(self):
        # 10x slower machine, same relative speedup: must still pass
        diff = compare_bench(_doc(cfg_s=100.0), _doc(cfg_s=1000.0))
        assert diff["ok"]
        assert diff["variants"]["FK"]["configs_per_sec_current"] == 100.0
        assert diff["variants"]["FK"]["configs_per_sec_baseline"] == 1000.0

    def test_no_shared_variants_fails(self):
        baseline = _doc()
        baseline["variants"] = {"all": baseline["variants"]["FK"]}
        diff = compare_bench(_doc(), baseline)
        assert not diff["ok"]
        assert any("no shared variants" in msg for msg in diff["failures"])

    def test_render_names_failures(self):
        diff = compare_bench(_doc(winner="plan-b"), _doc(winner="plan-a"))
        text = render_compare(diff)
        assert "FAILURES" in text
        assert "CHANGED" in text

    def test_render_clean_diff(self):
        doc = _doc()
        text = render_compare(compare_bench(doc, copy.deepcopy(doc)))
        assert "FAILURES" not in text
        assert "match" in text


class TestWarmLegCompare:
    """The v3 warm-leg gate, and v2 cross-version tolerance."""

    def test_both_warm_docs_compared(self):
        diff = compare_bench(_doc(warm=5.0), _doc(warm=5.0))
        assert diff["ok"]
        assert diff["variants"]["FK"]["warm_gate"] == "compared"
        assert diff["variants"]["FK"]["warm_speedup_drop"] == pytest.approx(0.0)

    def test_warm_speedup_regression_fails(self):
        current = _doc(warm=5.0 * (1 - REGRESSION_THRESHOLD) * 0.95)
        diff = compare_bench(current, _doc(warm=5.0))
        assert not diff["ok"]
        assert any("warm-start speedup regressed" in m for m in diff["failures"])

    def test_warm_speedup_drop_within_threshold_passes(self):
        current = _doc(warm=5.0 * (1 - REGRESSION_THRESHOLD) * 1.05)
        assert compare_bench(current, _doc(warm=5.0))["ok"]

    def test_warm_winner_divergence_fails(self):
        diff = compare_bench(_doc(warm=5.0, warm_match=False), _doc(warm=5.0))
        assert not diff["ok"]
        assert any("warm leg's winner diverged" in m for m in diff["failures"])

    def test_v2_baseline_skips_warm_gate(self):
        """A committed pre-warm-leg (v2) baseline must keep loading: the
        warm gate reports itself skipped instead of failing."""
        diff = compare_bench(_doc(warm=5.0), _doc())
        assert diff["ok"], diff["failures"]
        assert diff["variants"]["FK"]["warm_gate"].startswith("skipped")
        assert diff["variants"]["FK"]["warm_speedup_baseline"] is None

    def test_v2_current_against_v3_baseline_skips(self):
        diff = compare_bench(_doc(), _doc(warm=5.0))
        assert diff["ok"], diff["failures"]
        assert diff["variants"]["FK"]["warm_gate"].startswith("skipped")

    def test_render_skipped_and_compared(self):
        skipped = render_compare(compare_bench(_doc(warm=5.0), _doc()))
        assert "warm: skipped" in skipped
        compared = render_compare(
            compare_bench(_doc(warm=4.0), _doc(warm=5.0))
        )
        assert "4.00x" in compared and "5.00x" in compared


class TestLearnedLegCompare:
    """The v4 learned-leg gate: explicit schema versioning means the
    learned leg can never be silently judged against a v2/v3 baseline,
    and a document cannot smuggle a leg its declared version predates."""

    def test_both_learned_docs_compared(self):
        diff = compare_bench(_doc(learned=4.0), _doc(learned=4.0))
        assert diff["ok"], diff["failures"]
        assert diff["variants"]["FK"]["learned_gate"] == "compared"
        assert diff["variants"]["FK"]["learned_speedup_drop"] == \
            pytest.approx(0.0)

    def test_learned_speedup_regression_fails(self):
        current = _doc(learned=4.0 * (1 - REGRESSION_THRESHOLD) * 0.95)
        diff = compare_bench(current, _doc(learned=4.0))
        assert not diff["ok"]
        assert any("learned-top-k speedup regressed" in m
                   for m in diff["failures"])

    def test_learned_speedup_drop_within_threshold_passes(self):
        current = _doc(learned=4.0 * (1 - REGRESSION_THRESHOLD) * 1.05)
        assert compare_bench(current, _doc(learned=4.0))["ok"]

    def test_learned_winner_divergence_fails(self):
        diff = compare_bench(_doc(learned=4.0, learned_match=False),
                             _doc(learned=4.0))
        assert not diff["ok"]
        assert any("learned leg's winner diverged" in m
                   for m in diff["failures"])

    def test_old_baselines_skip_the_learned_gate(self):
        """v2 and v3 baselines predate the learned leg: the gate skips
        with the version called out, instead of failing or -- worse --
        comparing against a leg that was never run."""
        for baseline in (_doc(), _doc(warm=5.0)):
            diff = compare_bench(_doc(learned=4.0), baseline)
            assert diff["ok"], diff["failures"]
            gate = diff["variants"]["FK"]["learned_gate"]
            assert gate.startswith("skipped")
            assert "predates the learned leg" in gate
            assert diff["variants"]["FK"]["learned_speedup_baseline"] is None

    def test_v4_without_leg_reports_not_run(self):
        current = _doc(learned=4.0)
        baseline = _doc(learned=4.0)
        del baseline["variants"]["FK"]["learned_speedup"]
        diff = compare_bench(current, baseline)
        assert diff["ok"], diff["failures"]
        assert "did not run the learned leg" in \
            diff["variants"]["FK"]["learned_gate"]

    def test_mislabelled_version_is_a_failure(self):
        """A v2-declared document carrying a learned leg is the silent
        pass this schema field exists to prevent: hard failure."""
        mislabelled = _doc()
        mislabelled["variants"]["FK"]["learned_speedup"] = 4.0
        mislabelled["variants"]["FK"]["learned_winner_match"] = True
        for current, baseline in ((mislabelled, _doc(learned=4.0)),
                                  (_doc(learned=4.0), mislabelled)):
            diff = compare_bench(current, baseline)
            assert not diff["ok"]
            assert any("declares version 2 but carries a learned leg" in m
                       for m in diff["failures"])
            assert diff["variants"]["FK"]["learned_gate"] == \
                "failed: version/leg mismatch"

    def test_render_skipped_and_compared(self):
        skipped = render_compare(compare_bench(_doc(learned=4.0), _doc()))
        assert "learned: skipped" in skipped
        compared = render_compare(
            compare_bench(_doc(learned=3.0), _doc(learned=4.0))
        )
        assert "3.00x" in compared and "4.00x" in compared


class TestCommittedBaselines:
    @pytest.mark.parametrize("name", ["BENCH_scrnn.json", "BENCH_milstm.json"])
    def test_baseline_self_compare_is_clean(self, name):
        doc = json.loads((RESULTS / name).read_text())
        diff = compare_bench(copy.deepcopy(doc), doc)
        assert diff["ok"], diff["failures"]
        assert diff["variants"], "committed baseline must expose variants"

    @pytest.mark.parametrize("name", ["BENCH_scrnn.json", "BENCH_milstm.json"])
    def test_committed_v2_baseline_loads_against_v3(self, name):
        """The committed documents predate the warm leg (version 2); a
        fresh v3 document must compare against them without failing on
        the missing leg."""
        baseline = json.loads((RESULTS / name).read_text())
        assert baseline["version"] == 2
        current = copy.deepcopy(baseline)
        current["version"] = 3
        for vdoc in current["variants"].values():
            vdoc["warm_speedup"] = 5.0
            vdoc["warm_winner_match"] = True
            vdoc["warm_configs_fraction"] = 0.0
        diff = compare_bench(current, baseline)
        assert diff["ok"], diff["failures"]
        for vdoc in diff["variants"].values():
            assert vdoc["warm_gate"].startswith("skipped")
        assert "warm: skipped" in render_compare(diff)

    @pytest.mark.parametrize("name", ["BENCH_scrnn.json", "BENCH_milstm.json"])
    def test_committed_v2_baseline_loads_against_v4(self, name):
        """A fresh v4 document (warm + learned legs) against the
        committed v2 baselines: both leg gates skip, nothing fails."""
        baseline = json.loads((RESULTS / name).read_text())
        current = copy.deepcopy(baseline)
        current["version"] = 4
        for vdoc in current["variants"].values():
            vdoc["warm_speedup"] = 5.0
            vdoc["warm_winner_match"] = True
            vdoc["learned_speedup"] = 4.0
            vdoc["learned_winner_match"] = True
            vdoc["learned_configs_fraction"] = 0.2
        diff = compare_bench(current, baseline)
        assert diff["ok"], diff["failures"]
        for vdoc in diff["variants"].values():
            assert vdoc["warm_gate"].startswith("skipped")
            assert vdoc["learned_gate"].startswith("skipped")
