"""Regression test for the benchmark harness's timer isolation.

The harness used to report exploration times with no isolation between
phases: one shared wall-clock measurement, so a slow phase silently
inflated its neighbours.  Now every variant run owns a fresh
:class:`~repro.perf.PhaseClock` and every phase has its own exclusive
timer context -- so the per-phase seconds must sum to the measured wall
clock within tolerance, per variant, and a variant's clock must not
carry anything from the previous variant's run."""

import importlib.util
import sys
from pathlib import Path

import pytest

HARNESS_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "harness.py"


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("bench_harness", HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_harness"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("bench_harness", None)


def test_phase_times_sum_to_wall(harness, tiny_scrnn):
    out = harness.astra_times(
        tiny_scrnn, variants=("FK", "all"), seed=0, max_minibatches=60
    )
    assert set(out) == {"FK", "all"}
    for preset, row in out.items():
        wall, phases = row["wall_s"], row["phases_s"]
        assert wall > 0
        assert phases, f"{preset}: no phases recorded"
        total = sum(phases.values())
        # exclusive accounting: phases partition the wall clock; the only
        # slack is timer-read overhead
        assert total == pytest.approx(wall, rel=0.02, abs=0.05), (
            f"{preset}: phases sum to {total:.4f}s but wall is {wall:.4f}s"
        )
        # the residual bucket exists, and the exploration phases are split
        # out rather than lumped into it
        assert "other" in phases
        assert "explore" in phases or "simulate" in phases
        assert phases["other"] <= total


def test_each_variant_run_isolated(harness, tiny_scrnn):
    """A later variant's numbers never include an earlier variant's time:
    each run's phases sum to *its own* wall clock, so the per-variant
    totals are independent measurements."""
    out = harness.astra_times(
        tiny_scrnn, variants=("F", "FK"), seed=0, max_minibatches=40
    )
    for row in out.values():
        assert sum(row["phases_s"].values()) <= row["wall_s"] * 1.02 + 0.05
    # still reports the original fields
    for row in out.values():
        assert row["best_us"] > 0
        assert row["speedup"] >= 1.0
