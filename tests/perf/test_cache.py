"""Differential test of the compilation cache (the tentpole's correctness
contract): a cache-served lowering serializes bit-identically to a fresh
``Dispatcher.lower`` of the same plan -- for every bundled model, on
every tier of the cache, and after a checkpoint/resume cycle."""

import pytest

from repro.core import AstraFeatures, Enumerator
from repro.core.session import AstraSession
from repro.faults import FAULT_PREEMPT, FaultPlan, PreemptionError
from repro.gpu import P100
from repro.perf import FastPath, LoweringCache
from repro.runtime import Dispatcher
from repro.serialize import schedule_to_dict

MODEL_FIXTURES = (
    "tiny_scrnn", "tiny_sublstm", "tiny_milstm", "tiny_stacked_lstm", "tiny_gnmt",
)


def _plans(graph, features="FK"):
    """A spread of structurally different plans for one graph: the default
    assignment of each strategy, plus a profiling-restricted variant."""
    enum = Enumerator(graph, P100, AstraFeatures.preset(features))
    out = []
    for strategy in enum.strategies:
        tree = enum.build_fk_tree(strategy)
        tree.initialize()
        plan = enum.build_plan(strategy, tree.assignment()).plan
        out.append(plan)
    import dataclasses
    first = out[0]
    out.append(dataclasses.replace(
        first, profile_unit_ids=frozenset({first.units[0].unit_id})
    ))
    return out


@pytest.mark.parametrize("fixture", MODEL_FIXTURES)
def test_cached_lowering_bit_identical(fixture, request):
    model = request.getfixturevalue(fixture)
    graph = model.graph
    dispatcher = Dispatcher(graph)
    cache = LoweringCache()
    for plan in _plans(graph):
        fresh_doc = schedule_to_dict(dispatcher.lower(plan))
        # first sighting: structure miss (deps/order computed and stored)
        miss = cache.lower(dispatcher, plan)
        # second: structure hit, schedule miss (deps/order from cache)
        structure_hit = cache.lower(dispatcher, plan)
        # third: full schedule hit (re-bound to the caller's plan)
        schedule_hit = cache.lower(dispatcher, plan)
        assert schedule_to_dict(miss) == fresh_doc
        assert schedule_to_dict(structure_hit) == fresh_doc
        assert schedule_to_dict(schedule_hit) == fresh_doc
        assert schedule_hit.plan is plan
    stats = cache.stats()
    # every plan reached the schedule tier at least once; the profiling
    # variant shares its structure entry with its parent plan
    assert stats["schedule_hits"] >= len(_plans(graph))
    assert stats["structure_hits"] >= 1
    assert stats["structure_misses"] >= 1


def test_cache_differential_on_explored_winner(tiny_scrnn):
    """End-to-end: after a cached exploration, the winning plan re-lowers
    through the session's own cache identically to a fresh dispatcher."""
    session = AstraSession(
        tiny_scrnn, features="all", seed=0, fast=FastPath(cache=True, prune=False)
    )
    report = session.optimize(max_minibatches=60)
    cache = session.wirer.cache
    assert cache is not None
    assert cache.hit_rate > 0.0
    plan = report.astra.best_plan
    fresh = Dispatcher(tiny_scrnn.graph).lower(plan)
    served = cache.lower(session.wirer.executor.dispatcher, plan)
    assert schedule_to_dict(served) == schedule_to_dict(fresh)


def test_cache_differential_after_checkpoint_resume(tiny_scrnn, tmp_path):
    """Satellite: the bit-identical contract holds across a preemption --
    the resumed session rebuilds its cache and must serve schedules equal
    to fresh lowering (and converge exactly like an uninterrupted run)."""
    baseline = AstraSession(
        tiny_scrnn, features="all", seed=0, fast=FastPath(cache=True, prune=False)
    ).optimize(max_minibatches=60)

    path = str(tmp_path / "ck.json")
    resumes = 0
    while True:
        session = AstraSession(
            tiny_scrnn, features="all", seed=0,
            fast=FastPath(cache=True, prune=False),
            faults=FaultPlan.single(FAULT_PREEMPT, at=6, seed=0),
            checkpoint_path=path,
        )
        try:
            resumed = session.optimize(max_minibatches=60)
            break
        except PreemptionError:
            resumes += 1
            assert resumes <= 2
    assert resumes == 1
    assert resumed.best_time_us == baseline.best_time_us
    assert resumed.astra.assignment == baseline.astra.assignment

    plan = resumed.astra.best_plan
    fresh = Dispatcher(tiny_scrnn.graph).lower(plan)
    served = session.wirer.cache.lower(session.wirer.executor.dispatcher, plan)
    assert schedule_to_dict(served) == schedule_to_dict(fresh)


def test_eviction_respects_capacity(tiny_scrnn):
    graph = tiny_scrnn.graph
    dispatcher = Dispatcher(graph)
    cache = LoweringCache(capacity=1)
    plans = _plans(graph, features="FK")
    assert len(plans) >= 2
    for plan in plans:
        cache.lower(dispatcher, plan)
        cache.lower(dispatcher, plan)  # populate the schedule tier too
    stats = cache.stats()
    assert stats["schedule_entries"] <= 1
    assert stats["structure_entries"] <= 1
    assert stats["evictions"] > 0


def test_disabled_cache_absent_from_wirer(tiny_scrnn):
    session = AstraSession(
        tiny_scrnn, features="FK", seed=0, fast=FastPath(cache=False, prune=False)
    )
    assert session.wirer.cache is None
    report = session.optimize(max_minibatches=40)
    assert report.astra.fast_path["cache"] is None
    assert report.astra.fast_path["cache_enabled"] is False
