"""Tests for the stateful fault injector: determinism, windows, ledger,
and checkpointable state."""

import pytest

from repro.faults import (
    FAULT_EVENT_CORRUPT,
    FAULT_EVENT_DROP,
    FAULT_OOM,
    FAULT_PREEMPT,
    FAULT_SLOWDOWN,
    FAULT_THROTTLE,
    FaultPlan,
    FaultSpec,
    FaultWindow,
    PreemptionError,
)
from repro.gpu import P100


def drive(injector, minibatches=10, kernels=20):
    """Deterministically exercise an injector: the opportunity stream a
    simulator would produce."""
    outcomes = []
    for _ in range(minibatches):
        injector.begin_minibatch()
        for k in range(kernels):
            outcomes.append(injector.kernel_multiplier(f"k{k}"))
            outcomes.append(injector.launch_fails(f"k{k}"))
            injector.event_fault(k)
        log = injector.current_log
        outcomes.append((frozenset(log.dropped_records),
                         tuple(sorted(log.corrupted_records.items()))))
    return outcomes


class TestDeterminism:
    def test_same_seed_same_faults(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(FAULT_SLOWDOWN, rate=0.3, factor=2.0),
                FaultSpec(FAULT_EVENT_DROP, rate=0.2),
                FaultSpec(FAULT_EVENT_CORRUPT, rate=0.2, factor=3.0),
            ),
            seed=5,
        )
        a, b = plan.injector(), plan.injector()
        assert drive(a) == drive(b)
        assert a.counts == b.counts
        assert a.ledger == b.ledger

    def test_different_seed_different_faults(self):
        base = FaultPlan(specs=(FaultSpec(FAULT_SLOWDOWN, rate=0.3, factor=2.0),))
        a = drive(base.with_seed(1).injector())
        b = drive(base.with_seed(2).injector())
        assert a != b


class TestWindows:
    def test_throttle_only_inside_window(self):
        plan = FaultPlan(specs=(
            FaultSpec(FAULT_THROTTLE, factor=2.0, window=FaultWindow(2, 4)),
        ))
        inj = plan.injector()
        multipliers = []
        for _ in range(6):
            inj.begin_minibatch()
            multipliers.append(inj.kernel_multiplier())
        assert multipliers == [1.0, 1.0, 2.0, 2.0, 1.0, 1.0]
        # the ledger records the throttle once per affected mini-batch
        assert inj.counts[FAULT_THROTTLE] == 2

    def test_oom_window_caps_memory(self):
        plan = FaultPlan(specs=(
            FaultSpec(FAULT_OOM, mem_limit_bytes=1000, window=FaultWindow(1, 2)),
        ))
        inj = plan.injector()
        inj.begin_minibatch()  # mini-batch 0: outside window
        assert inj.effective_memory_bytes(P100) == P100.memory_bytes
        inj.begin_minibatch()  # mini-batch 1: capped
        assert inj.effective_memory_bytes(P100) == 1000
        inj.begin_minibatch()  # mini-batch 2: outside again
        assert inj.effective_memory_bytes(P100) == P100.memory_bytes


class TestPreemption:
    def test_fires_once_at_scheduled_minibatch(self):
        plan = FaultPlan(specs=(FaultSpec(FAULT_PREEMPT, at=3),))
        inj = plan.injector()
        for _ in range(3):
            inj.begin_minibatch()
        with pytest.raises(PreemptionError) as exc:
            inj.begin_minibatch()
        assert exc.value.minibatch == 3
        assert not exc.value.transient
        # once preempted, the (restored) injector never fires again
        inj.begin_minibatch()
        assert inj.counts[FAULT_PREEMPT] == 1


class TestLedger:
    def test_every_injection_recorded(self):
        plan = FaultPlan(specs=(
            FaultSpec(FAULT_EVENT_DROP, rate=1.0),
        ), seed=1)
        inj = plan.injector()
        inj.begin_minibatch()
        for k in range(5):
            inj.event_fault(k)
        assert inj.counts[FAULT_EVENT_DROP] == 5
        assert len(inj.ledger) == 5
        assert inj.summary()["total"] == 5

    def test_observe_into_is_idempotent(self):
        from repro.obs import MetricsRegistry

        plan = FaultPlan(specs=(FaultSpec(FAULT_EVENT_DROP, rate=1.0),))
        inj = plan.injector()
        inj.begin_minibatch()
        inj.event_fault(0)
        registry = MetricsRegistry()
        inj.observe_into(registry)
        inj.observe_into(registry)
        snap = registry.snapshot()
        assert snap[f"fault.injected.{FAULT_EVENT_DROP}"]["value"] == 1
        assert snap["fault.injected.total"]["value"] == 1


class TestStateRoundTrip:
    def test_restore_continues_exact_stream(self):
        """A restored injector produces bit-identical decisions to one that
        never stopped -- the checkpointing determinism contract."""
        plan = FaultPlan(
            specs=(
                FaultSpec(FAULT_SLOWDOWN, rate=0.4, factor=2.0),
                FaultSpec(FAULT_EVENT_CORRUPT, rate=0.3, factor=3.0),
            ),
            seed=9,
        )
        reference = plan.injector()
        full = drive(reference, minibatches=8)

        first = plan.injector()
        drive(first, minibatches=4)
        state = first.state()

        import json
        state = json.loads(json.dumps(state))  # must survive JSON
        second = plan.injector()
        second.restore(state)
        tail = drive(second, minibatches=4)
        assert tail == full[len(full) - len(tail):]
        assert second.counts == reference.counts
