"""Tests for the declarative fault plans (repro.faults.plan)."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FAULT_LAUNCH,
    FAULT_OOM,
    FAULT_PREEMPT,
    FAULT_SLOWDOWN,
    FAULT_THROTTLE,
    FaultPlan,
    FaultSpec,
    FaultWindow,
)


class TestFaultWindow:
    def test_half_open(self):
        w = FaultWindow(2, 5)
        assert not w.contains(1)
        assert w.contains(2)
        assert w.contains(4)
        assert not w.contains(5)

    def test_open_ended(self):
        w = FaultWindow(3)
        assert not w.contains(2)
        assert w.contains(3)
        assert w.contains(10_000)

    def test_default_covers_everything(self):
        assert FaultWindow().contains(0)
        assert FaultWindow().contains(999)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic_ray")

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(FAULT_LAUNCH, rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(FAULT_LAUNCH, rate=-0.1)

    def test_slowdown_factor_must_slow(self):
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(FAULT_SLOWDOWN, rate=0.1, factor=0.5)
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(FAULT_THROTTLE, factor=0.9)

    def test_preempt_needs_at(self):
        with pytest.raises(ValueError, match="at"):
            FaultSpec(FAULT_PREEMPT)
        FaultSpec(FAULT_PREEMPT, at=5)  # ok


class TestFaultPlan:
    def test_duplicate_kinds_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(specs=(
                FaultSpec(FAULT_LAUNCH, rate=0.1),
                FaultSpec(FAULT_LAUNCH, rate=0.2),
            ))

    def test_spec_lookup(self):
        plan = FaultPlan(specs=(FaultSpec(FAULT_LAUNCH, rate=0.1),))
        assert plan.spec(FAULT_LAUNCH).rate == 0.1
        assert plan.spec(FAULT_OOM) is None
        assert plan.active_kinds == (FAULT_LAUNCH,)

    def test_none_is_empty(self):
        assert FaultPlan.none().specs == ()

    def test_single_defaults(self):
        plan = FaultPlan.single(FAULT_SLOWDOWN, rate=0.2, seed=7)
        (spec,) = plan.specs
        assert spec.kind == FAULT_SLOWDOWN
        assert spec.rate == 0.2
        assert spec.factor == 4.0
        assert plan.seed == 7

    def test_single_override(self):
        plan = FaultPlan.single(FAULT_PREEMPT, at=11)
        assert plan.spec(FAULT_PREEMPT).at == 11

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_roundtrip_every_kind(self, kind):
        extra = {"at": 4} if kind == FAULT_PREEMPT else {}
        plan = FaultPlan.single(kind, seed=3, **extra)
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_roundtrip_full_plan(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(FAULT_SLOWDOWN, rate=0.25, factor=3.5,
                          window=FaultWindow(1, 9)),
                FaultSpec(FAULT_OOM, mem_limit_bytes=1234,
                          window=FaultWindow(4)),
                FaultSpec(FAULT_PREEMPT, at=6),
            ),
            seed=42,
        )
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_with_seed(self):
        plan = FaultPlan.single(FAULT_LAUNCH, rate=0.1, seed=0)
        assert plan.with_seed(9).seed == 9
        assert plan.with_seed(9).specs == plan.specs

    def test_version_gate(self):
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_dict({"version": 99, "specs": []})
