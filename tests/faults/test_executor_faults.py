"""Tests for the executor's typed fault surface: aborting faults raise,
measurement faults taint-and-withhold -- never silently-wrong numbers."""

import pytest

from repro.baselines.native import native_plan
from repro.core import Enumerator, AstraFeatures
from repro.faults import (
    FAULT_EVENT_CORRUPT,
    FAULT_EVENT_DROP,
    FAULT_LAUNCH,
    FAULT_OOM,
    DeviceOOMError,
    FaultPlan,
    FaultSpec,
    FaultWindow,
    KernelLaunchError,
    PreemptionError,
)
from repro.gpu import P100
from repro.obs import MetricsRegistry
from repro.runtime import Executor


def astra_plan(model, profile=True):
    """A profiled, arena-backed plan (native plans profile nothing)."""
    enum = Enumerator(model.graph, P100, AstraFeatures.preset("F"))
    built = enum.build_plan(enum.strategies[0], {})
    return built.plan


class TestLaunchFailure:
    def test_raises_and_counts(self, tiny_scrnn):
        plan = FaultPlan(specs=(FaultSpec(FAULT_LAUNCH, rate=1.0),))
        metrics = MetricsRegistry()
        ex = Executor(tiny_scrnn.graph, P100, metrics=metrics,
                      injector=plan.injector())
        with pytest.raises(KernelLaunchError) as exc:
            ex.run(native_plan(tiny_scrnn.graph))
        assert exc.value.transient
        snap = metrics.snapshot()
        assert snap["fault.launch_fail"]["value"] == 1
        assert snap["fault.minibatches_lost"]["value"] == 1

    def test_clean_run_unaffected_by_zero_rate(self, tiny_scrnn):
        plan = FaultPlan(specs=(FaultSpec(FAULT_LAUNCH, rate=0.0),))
        ex = Executor(tiny_scrnn.graph, P100, injector=plan.injector())
        clean = Executor(tiny_scrnn.graph, P100)
        assert (ex.run(native_plan(tiny_scrnn.graph)).total_time_us
                == clean.run(native_plan(tiny_scrnn.graph)).total_time_us)


class TestEventFaults:
    def test_dropped_timestamps_withheld_not_zero(self, tiny_scrnn):
        plan = FaultPlan(specs=(FaultSpec(FAULT_EVENT_DROP, rate=1.0),))
        metrics = MetricsRegistry()
        ex = Executor(tiny_scrnn.graph, P100, metrics=metrics,
                      injector=plan.injector())
        plan_under_test = astra_plan(tiny_scrnn)
        result = ex.run(plan_under_test)
        clean = Executor(tiny_scrnn.graph, P100).run(plan_under_test)
        # every *profiled* timestamp was lost: those measurements are
        # withheld (absent), not zero/garbage; unprofiled units keep their
        # simulator-ground-truth times
        profiled = set(plan_under_test.profile_unit_ids)
        assert profiled
        assert result.tainted
        assert {f.kind for f in result.faults} == {FAULT_EVENT_DROP}
        tainted_ids = {f.unit_id for f in result.faults}
        assert tainted_ids == profiled & set(clean.unit_times)
        assert set(result.unit_times).isdisjoint(tainted_ids)
        assert set(result.unit_times) | tainted_ids == set(clean.unit_times)
        assert metrics.snapshot()["fault.event_drop"]["value"] == len(tainted_ids)
        # the mini-batch itself still ran (work-conserving)
        assert result.total_time_us == pytest.approx(clean.total_time_us)

    def test_implausible_corruption_detected(self, tiny_scrnn):
        # factor large enough that most corruptions land outside the
        # mini-batch envelope and are caught by the plausibility check
        plan = FaultPlan(
            specs=(FaultSpec(FAULT_EVENT_CORRUPT, rate=1.0, factor=1e6),),
            seed=0,
        )
        metrics = MetricsRegistry()
        ex = Executor(tiny_scrnn.graph, P100, metrics=metrics,
                      injector=plan.injector())
        result = ex.run(astra_plan(tiny_scrnn))
        detected = [f for f in result.faults if f.kind == FAULT_EVENT_CORRUPT]
        assert detected
        for fault in detected:
            assert fault.unit_id not in result.unit_times
        assert metrics.snapshot()["fault.event_corrupt_detected"]["value"] == len(
            detected
        )

    def test_plausible_corruption_survives_for_mad(self, tiny_scrnn):
        """Small corruption factors stay inside the envelope: the value is
        wrong but plausible, exactly what min-of-k/MAD exists to catch."""
        plan = FaultPlan(
            specs=(FaultSpec(FAULT_EVENT_CORRUPT, rate=1.0, factor=1.2),),
            seed=0,
        )
        ex = Executor(tiny_scrnn.graph, P100, injector=plan.injector())
        result = ex.run(astra_plan(tiny_scrnn))
        clean = Executor(tiny_scrnn.graph, P100).run(astra_plan(tiny_scrnn))
        assert result.unit_times  # not withheld
        assert result.unit_times != pytest.approx(clean.unit_times)

    def test_tainted_epochs_withheld(self, tiny_sublstm):
        enum = Enumerator(tiny_sublstm.graph, P100, AstraFeatures.preset("FKS"))
        strategy = enum.strategies[0]
        tree = enum.build_fk_tree(strategy)
        partition, stree = enum.prepare_stream_phase(strategy, tree.assignment())
        built = enum.build_plan(
            strategy, tree.assignment(),
            stream_options={
                var.payload[0]: var.payload[1].options[var.value]
                for var in stree.variables()
            },
            partition=partition,
        )
        clean = Executor(tiny_sublstm.graph, P100).run(built.plan)
        plan = FaultPlan(specs=(FaultSpec(FAULT_EVENT_DROP, rate=1.0),))
        faulty = Executor(tiny_sublstm.graph, P100,
                          injector=plan.injector()).run(built.plan)
        assert clean.epoch_metrics
        assert faulty.epoch_metrics == {}


class TestDeviceOOM:
    def test_arena_over_capacity_raises(self, tiny_scrnn):
        plan = FaultPlan(specs=(
            FaultSpec(FAULT_OOM, mem_limit_bytes=1, window=FaultWindow()),
        ))
        metrics = MetricsRegistry()
        ex = Executor(tiny_scrnn.graph, P100, metrics=metrics,
                      injector=plan.injector())
        with pytest.raises(DeviceOOMError) as exc:
            ex.run(astra_plan(tiny_scrnn))
        assert not exc.value.transient
        assert exc.value.capacity_bytes == 1
        assert metrics.snapshot()["fault.oom"]["value"] == 1

    def test_native_plan_never_ooms(self, tiny_scrnn):
        """The native plan carries no arena, so even a 1-byte device cap
        cannot abort it -- the degradation fallback is always runnable."""
        plan = FaultPlan(specs=(FaultSpec(FAULT_OOM, mem_limit_bytes=1),))
        ex = Executor(tiny_scrnn.graph, P100, injector=plan.injector())
        ex.run(native_plan(tiny_scrnn.graph))  # must not raise

    def test_capacity_enforced_without_injector(self, tiny_scrnn):
        """GPUSpec.memory_bytes is a real device limit, not only a fault
        knob: a plan whose arena exceeds it aborts on a clean executor."""
        from dataclasses import replace

        small_device = replace(P100, memory_bytes=1)
        ex = Executor(tiny_scrnn.graph, small_device)
        with pytest.raises(DeviceOOMError):
            ex.run(astra_plan(tiny_scrnn))


class TestPreemptionAtBoundary:
    def test_preemption_fires_between_minibatches(self, tiny_scrnn):
        plan = FaultPlan(specs=(FaultSpec("preempt", at=2),))
        ex = Executor(tiny_scrnn.graph, P100, injector=plan.injector())
        native = native_plan(tiny_scrnn.graph)
        ex.run(native)
        ex.run(native)
        with pytest.raises(PreemptionError):
            ex.run(native)
