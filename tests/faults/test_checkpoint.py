"""Exploration checkpointing: save/restore round trips and the
preemption/resume invariant (acceptance criterion: an interrupted and
resumed exploration converges to the same best configuration as an
uninterrupted one, without re-spending mini-batches on configurations
already profiled)."""

import json

import pytest

from repro.core.session import AstraSession
from repro.faults import (
    FAULT_PREEMPT,
    ExplorationCheckpoint,
    FaultPlan,
    PreemptionError,
)
from repro.obs import MetricsRegistry


class TestCheckpointRoundTrip:
    def test_dumps_loads(self):
        ckpt = ExplorationCheckpoint(
            signature={"device": "P100", "seed": 0},
            index_doc={"version": 1, "entries": []},
            total_spent=7,
            timeline=[("fk/a", 10.0), ("streams/a", 9.0)],
            overhead_samples=[0.01],
            best_so_far=9.0,
            phase_carry={"fk/a": (5, 2)},
            preempted_at=7,
        )
        again = ExplorationCheckpoint.loads(ckpt.dumps())
        assert again == ckpt

    def test_save_load_file(self, tmp_path):
        path = str(tmp_path / "ck.json")
        ckpt = ExplorationCheckpoint(
            signature={"seed": 1}, index_doc={"version": 1, "entries": []}
        )
        ckpt.save(path)
        assert ExplorationCheckpoint.load(path) == ckpt
        # atomic write leaves no temp file behind
        assert list(tmp_path.iterdir()) == [tmp_path / "ck.json"]

    def test_version_gate(self):
        with pytest.raises(ValueError, match="version"):
            ExplorationCheckpoint.from_dict({"version": 99})

    def test_signature_mismatch_refuses(self):
        ckpt = ExplorationCheckpoint(
            signature={"device": "P100", "seed": 0},
            index_doc={"version": 1, "entries": []},
        )
        with pytest.raises(ValueError, match="seed"):
            ckpt.check_signature({"device": "P100", "seed": 1})


class TestPreemptResume:
    def _optimize_resuming(self, model, path, budget=60, seed=0, metrics=None):
        """Run to completion across any number of preemptions."""
        resumes = 0
        while True:
            session = AstraSession(
                model, features="all", seed=seed,
                faults=FaultPlan.single(FAULT_PREEMPT, at=6, seed=seed),
                checkpoint_path=path, metrics=metrics,
            )
            try:
                return session.optimize(max_minibatches=budget), resumes
            except PreemptionError as exc:
                assert exc.checkpoint_path == path
                resumes += 1
                assert resumes <= 2, "preemption must fire at most once"

    def test_resume_invariant(self, tiny_scrnn, tmp_path):
        """The acceptance criterion: interrupted + resumed == uninterrupted,
        with no mini-batches re-spent on already-profiled configurations."""
        baseline = AstraSession(tiny_scrnn, features="all", seed=0).optimize(
            max_minibatches=60
        )
        path = str(tmp_path / "ck.json")
        metrics = MetricsRegistry()
        resumed, resumes = self._optimize_resuming(
            tiny_scrnn, path, metrics=metrics
        )
        assert resumes == 1
        # same best configuration and time as the uninterrupted run
        assert resumed.best_time_us == baseline.best_time_us
        assert resumed.astra.assignment == baseline.astra.assignment
        assert resumed.astra.best_strategy == baseline.astra.best_strategy
        # no re-spend: cumulative mini-batches equal the uninterrupted count
        assert resumed.configs_explored == baseline.configs_explored
        assert metrics.counter("recovery.resumed").value == 1
        assert metrics.counter("recovery.checkpoint_saves").value >= 1

    def test_checkpoint_written_at_preemption(self, tiny_scrnn, tmp_path):
        path = str(tmp_path / "ck.json")
        session = AstraSession(
            tiny_scrnn, features="all", seed=0,
            faults=FaultPlan.single(FAULT_PREEMPT, at=4),
            checkpoint_path=path,
        )
        with pytest.raises(PreemptionError):
            session.optimize(max_minibatches=60)
        ckpt = ExplorationCheckpoint.load(path)
        assert ckpt.preempted_at == 4
        assert not ckpt.completed
        assert ckpt.total_spent > 0
        assert len(ckpt.index_doc["entries"]) > 0
        json.dumps(ckpt.to_dict())  # fully JSON-safe (RNG big ints encoded)

    def test_completed_checkpoint_marked(self, tiny_scrnn, tmp_path):
        path = str(tmp_path / "ck.json")
        AstraSession(
            tiny_scrnn, features="all", seed=0, checkpoint_path=path
        ).optimize(max_minibatches=40)
        assert ExplorationCheckpoint.load(path).completed

    def test_resume_onto_wrong_run_refused(self, tiny_scrnn, tmp_path):
        path = str(tmp_path / "ck.json")
        AstraSession(
            tiny_scrnn, features="all", seed=0, checkpoint_path=path
        ).optimize(max_minibatches=20)
        with pytest.raises(ValueError, match="refusing to resume"):
            AstraSession(
                tiny_scrnn, features="all", seed=1, checkpoint_path=path
            )

    def test_preemption_without_checkpoint_path_still_raises(self, tiny_scrnn):
        session = AstraSession(
            tiny_scrnn, features="all", seed=0,
            faults=FaultPlan.single(FAULT_PREEMPT, at=3),
        )
        with pytest.raises(PreemptionError) as exc:
            session.optimize(max_minibatches=40)
        assert exc.value.checkpoint_path is None
