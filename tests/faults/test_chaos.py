"""Tests for the chaos harness behind ``repro chaos``."""

import pytest

from repro.faults import FAULT_LAUNCH, FAULT_OOM, FAULT_PREEMPT, FaultPlan
from repro.faults.chaos import (
    ChaosCell,
    ChaosReport,
    default_matrix,
    run_chaos,
)


@pytest.fixture(scope="module")
def small_sweep(request):
    """One reduced sweep shared by the assertions below (each full cell
    runs a complete exploration, so keep the matrix small)."""
    tiny_scrnn = request.getfixturevalue("tiny_scrnn")
    cells = [
        ChaosCell("clean", FaultPlan.none()),
        ChaosCell("launch_fail", FaultPlan.single(FAULT_LAUNCH, rate=0.004)),
        ChaosCell(
            "oom", FaultPlan.single(FAULT_OOM, mem_limit_bytes=1),
        ),
        ChaosCell("preempt", FaultPlan.single(FAULT_PREEMPT, at=4)),
    ]
    return run_chaos(
        tiny_scrnn, model_name="scrnn", budget=40, seed=0, cells=cells
    )


class TestSweep:
    def test_all_cells_terminate_ok(self, small_sweep):
        assert [c.name for c in small_sweep.cells] == [
            "clean", "launch_fail", "oom", "preempt",
        ]
        assert small_sweep.ok, [
            (c.name, c.problems) for c in small_sweep.cells if not c.ok
        ]

    def test_clean_cell_finds_speedup(self, small_sweep):
        clean = small_sweep.cells[0]
        assert not clean.degraded and not clean.resumed
        assert clean.injected == {}
        assert clean.speedup > 1.0

    def test_faulty_cells_account_their_faults(self, small_sweep):
        by_name = {c.name: c for c in small_sweep.cells}
        assert by_name["launch_fail"].injected.get("launch_fail", 0) > 0
        assert by_name["preempt"].injected == {"preempt": 1}

    def test_oom_cell_degrades_not_crashes(self, small_sweep):
        oom = small_sweep.cells[2]
        assert oom.degraded
        assert oom.speedup == pytest.approx(1.0)

    def test_preempt_cell_resumes(self, small_sweep):
        preempt = small_sweep.cells[3]
        assert preempt.resumed
        assert preempt.speedup > 1.0

    def test_report_round_trips_to_json(self, small_sweep):
        import json

        doc = json.loads(json.dumps(small_sweep.to_dict()))
        assert doc["version"] == 1
        assert doc["model"] == "scrnn"
        assert doc["ok"] is True
        assert len(doc["cells"]) == 4
        assert doc["cells"][3]["resumed"] is True

    def test_render_is_a_table(self, small_sweep):
        text = small_sweep.render()
        assert "chaos sweep: scrnn" in text
        assert "preempted+resumed" in text
        assert "degraded->native" in text
        assert text.strip().endswith("OK")


class TestDeterminism:
    def test_same_seed_same_sweep(self, tiny_scrnn):
        cells = [
            ChaosCell(
                "launch_fail", FaultPlan.single(FAULT_LAUNCH, rate=0.004),
            ),
        ]
        a = run_chaos(tiny_scrnn, model_name="m", budget=30, seed=0,
                      cells=cells)
        b = run_chaos(tiny_scrnn, model_name="m", budget=30, seed=0,
                      cells=cells)
        assert a.to_dict() == b.to_dict()


class TestDefaultMatrix:
    def test_covers_every_fault_class_plus_controls(self):
        names = [c.name for c in default_matrix()]
        assert names[0] == "clean"
        assert names[-1] == "storm"
        for kind in ("slowdown", "throttle", "launch_fail", "event_drop",
                     "event_corrupt", "oom", "preempt"):
            assert kind in names

    def test_report_ok_requires_every_cell(self):
        from repro.faults.chaos import CellResult

        good = CellResult("a", ok=True, best_time_us=1.0, native_time_us=1.0,
                          speedup=1.0, degraded=False, resumed=False)
        bad = CellResult("b", ok=False, best_time_us=1.0, native_time_us=1.0,
                         speedup=1.0, degraded=False, resumed=False,
                         problems=["x"])
        assert ChaosReport(model="m", cells=[good]).ok
        assert not ChaosReport(model="m", cells=[good, bad]).ok
