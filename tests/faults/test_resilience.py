"""End-to-end resilience: retry, quarantine, OOM pruning, degradation,
and fault accounting through the full exploration."""

import pytest

from repro.core import ROBUST, QUARANTINED_US, MeasurementPolicy
from repro.core.session import AstraSession
from repro.faults import (
    FAULT_EVENT_DROP,
    FAULT_LAUNCH,
    FAULT_OOM,
    FAULT_SLOWDOWN,
    FaultPlan,
    FaultSpec,
    FaultWindow,
)
from repro.obs import MetricsRegistry, RunReporter


def run_faulty(model, faults, policy=ROBUST, budget=40, seed=0, **kwargs):
    metrics = MetricsRegistry()
    reporter = RunReporter()
    session = AstraSession(
        model, features="all", seed=seed, policy=policy, faults=faults,
        metrics=metrics, reporter=reporter, **kwargs,
    )
    report = session.optimize(max_minibatches=budget)
    return report, session, metrics, reporter


class TestRetry:
    def test_transient_launch_failures_retried(self, tiny_scrnn):
        faults = FaultPlan.single(FAULT_LAUNCH, rate=0.004, seed=0)
        report, session, metrics, _rep = run_faulty(tiny_scrnn, faults)
        snap = metrics.snapshot()
        assert snap["fault.injected.launch_fail"]["value"] > 0
        assert snap["recovery.retries"]["value"] > 0
        assert snap["recovery.retries_succeeded"]["value"] > 0
        # retried schedules are re-validated through repro.check
        assert snap["recovery.revalidated"]["value"] > 0
        assert report.speedup_over_native >= 1.0

    def test_recovers_clean_run_optimum(self, tiny_scrnn):
        """Recovery quality: with sparse transient faults, the exploration
        still converges to the plan a fault-free run finds."""
        clean = AstraSession(tiny_scrnn, features="all", seed=0).optimize(
            max_minibatches=40
        )
        faults = FaultPlan.single(FAULT_LAUNCH, rate=0.004, seed=0)
        report, session, _m, _r = run_faulty(tiny_scrnn, faults)
        clean_eval = session.measure_clean(report.astra.best_plan)
        assert clean_eval <= clean.best_time_us * 1.001


class TestQuarantine:
    def test_persistent_faults_quarantine_configs(self, tiny_scrnn):
        # every launch fails: every measurement fails, every configuration
        # is eventually quarantined, and the run degrades to native
        faults = FaultPlan.single(FAULT_LAUNCH, rate=1.0, seed=0)
        policy = MeasurementPolicy(samples=1, max_attempts=2, quarantine_after=1)
        report, session, metrics, reporter = run_faulty(
            tiny_scrnn, faults, policy=policy, budget=10
        )
        snap = metrics.snapshot()
        assert snap["recovery.quarantined"]["value"] > 0
        assert snap["recovery.measurements_failed"]["value"] > 0
        assert report.astra.degraded
        assert report.speedup_over_native == pytest.approx(1.0)
        # quarantined keys carry the sentinel, never a fake measurement
        quarantined = [
            v for v in session.wirer.index._store.values()
            if v.value == QUARANTINED_US
        ]
        assert quarantined

    def test_degraded_report_states_it(self, tiny_scrnn):
        faults = FaultPlan.single(FAULT_LAUNCH, rate=1.0, seed=0)
        policy = MeasurementPolicy(samples=1, max_attempts=2, quarantine_after=1)
        report, _s, _m, reporter = run_faulty(
            tiny_scrnn, faults, policy=policy, budget=10
        )
        kinds = {r.assignment_delta.get("fault") for r in reporter.faults()}
        assert "degradation" in kinds
        assert report.astra.best_plan.label.startswith("native")


class TestOOMPruning:
    def test_strategies_pruned_and_degraded(self, tiny_scrnn):
        faults = FaultPlan(specs=(
            FaultSpec(FAULT_OOM, mem_limit_bytes=1, window=FaultWindow()),
        ))
        report, _s, metrics, _r = run_faulty(tiny_scrnn, faults, budget=20)
        snap = metrics.snapshot()
        assert snap["recovery.strategies_pruned"]["value"] >= 1
        # no arena fits 1 byte: the wirer degrades to the arena-less
        # native plan instead of failing
        assert report.astra.degraded
        assert report.astra.best_plan.allocation is None
        assert report.speedup_over_native == pytest.approx(1.0)

    def test_oom_prune_costs_no_minibatches(self, tiny_scrnn):
        """Proactive pruning: an oversized arena is rejected statically,
        before a single exploration mini-batch is spent on the strategy."""
        faults = FaultPlan(specs=(
            FaultSpec(FAULT_OOM, mem_limit_bytes=1, window=FaultWindow()),
        ))
        report, _s, _m, _r = run_faulty(tiny_scrnn, faults, budget=20)
        assert report.astra.configs_explored == 0


class TestRobustMeasurement:
    def test_slowdown_noise_survived(self, tiny_scrnn):
        """Transient stragglers inflate random samples; min-of-k keeps the
        exploration's ranking intact and the final plan competitive."""
        clean = AstraSession(tiny_scrnn, features="all", seed=0).optimize(
            max_minibatches=40
        )
        faults = FaultPlan.single(FAULT_SLOWDOWN, rate=0.3, seed=0, factor=6.0)
        report, session, metrics, _r = run_faulty(tiny_scrnn, faults)
        assert metrics.snapshot()["fault.injected.slowdown"]["value"] > 0
        clean_eval = session.measure_clean(report.astra.best_plan)
        assert clean_eval <= clean.best_time_us * 1.05
        assert not report.astra.degraded


class TestFaultAccounting:
    def test_ledger_metrics_and_report_agree(self, tiny_scrnn):
        faults = FaultPlan.single(FAULT_EVENT_DROP, rate=0.05, seed=0)
        report, session, metrics, reporter = run_faulty(tiny_scrnn, faults)
        injector = session.wirer.injector
        injected = injector.summary()["injected"]
        assert injected.get("event_drop", 0) > 0
        # view 1: the AstraReport's fault summary
        assert report.astra.fault_summary["injected"] == injected
        # view 2: fault.injected.* gauges
        snap = metrics.snapshot()
        for kind, count in injected.items():
            assert snap[f"fault.injected.{kind}"]["value"] == count
        # view 3: the run report carries fault records for each kind
        recorded = {r.assignment_delta.get("fault") for r in reporter.faults()}
        assert set(injected) <= recorded

    def test_surfaced_faults_counted(self, tiny_scrnn):
        faults = FaultPlan.single(FAULT_EVENT_DROP, rate=0.05, seed=0)
        _report, _s, metrics, _r = run_faulty(tiny_scrnn, faults)
        snap = metrics.snapshot()
        # executor-level taint counter and wirer-level surfaced counter
        assert snap["fault.event_drop"]["value"] > 0
        assert snap["fault.surfaced.event_drop"]["value"] > 0


class TestCleanRunUnchanged:
    def test_no_faults_no_policy_identical_to_baseline(self, tiny_scrnn):
        """The hardening must be invisible when disabled: same seed, same
        exploration, same report as a wirer without any fault plumbing."""
        plain = AstraSession(tiny_scrnn, features="all", seed=0).optimize(
            max_minibatches=40
        )
        hardened = AstraSession(
            tiny_scrnn, features="all", seed=0, faults=FaultPlan.none(),
        ).optimize(max_minibatches=40)
        assert hardened.best_time_us == plain.best_time_us
        assert hardened.configs_explored == plain.configs_explored
        assert hardened.astra.assignment == plain.astra.assignment
        assert not hardened.astra.degraded
