"""Tests for the native, cuDNN-style and XLA-style baselines."""

import pytest

from repro.baselines import (
    cudnn_applicable,
    cudnn_plan,
    detect_lstm_steps,
    native_plan,
    run_cudnn,
    run_native,
    run_xla,
    xla_plan,
)
from repro.gpu import P100
from repro.gpu.streams import HostComputeItem, LaunchItem
from repro.runtime import Dispatcher
from repro.models import build_stacked_lstm, build_sublstm
from tests.conftest import TINY


class TestNative:
    def test_single_stream(self, tiny_sublstm):
        plan = native_plan(tiny_sublstm.graph)
        assert plan.num_streams == 1
        assert plan.profile is False

    def test_one_kernel_per_node(self, tiny_sublstm):
        plan = native_plan(tiny_sublstm.graph)
        assert all(len(u.node_ids) == 1 for u in plan.units)

    def test_uses_default_library(self, tiny_sublstm):
        plan = native_plan(tiny_sublstm.graph)
        gemms = [u for u in plan.units if u.kernel.kind == "gemm"]
        assert all(u.kernel.library == "cublas" for u in gemms)

    def test_runs_deterministically(self, tiny_sublstm, device):
        t1 = run_native(tiny_sublstm.graph, device).total_time_us
        t2 = run_native(tiny_sublstm.graph, device).total_time_us
        assert t1 == t2

    def test_elementwise_fusion_option_helps(self, tiny_sublstm, device):
        plain = run_native(tiny_sublstm.graph, device).total_time_us
        fused = run_native(tiny_sublstm.graph, device, fuse_elementwise=True).total_time_us
        assert fused < plain


class TestCudnnCoverage:
    def test_standard_lstm_covered(self, tiny_stacked_lstm):
        cov = detect_lstm_steps(tiny_stacked_lstm.graph)
        assert cov.fraction_of_gemms > 0.7
        assert cudnn_applicable(tiny_stacked_lstm.graph)

    def test_long_tail_cells_not_covered(self, tiny_scrnn, tiny_sublstm, tiny_milstm):
        for model in (tiny_scrnn, tiny_sublstm, tiny_milstm):
            cov = detect_lstm_steps(model.graph)
            assert cov.fraction_of_gemms == 0.0, model.name
            assert not cudnn_applicable(model.graph)

    def test_gnmt_mostly_covered(self, tiny_gnmt):
        """Table 6: GNMT is mostly covered except the attention module."""
        cov = detect_lstm_steps(tiny_gnmt.graph)
        assert 0.5 < cov.fraction_of_gemms < 1.0
        attention_gemms = [
            n for n in tiny_gnmt.graph.gemm_nodes() if "attention" in n.scope
        ]
        assert attention_gemms
        assert all(n.node_id not in cov.covered_nodes for n in attention_gemms)

    def test_both_passes_covered(self, tiny_stacked_lstm):
        cov = detect_lstm_steps(tiny_stacked_lstm.graph)
        assert any(k.endswith("/forward") for k in cov.covered_scopes)
        assert any(k.endswith("/backward") for k in cov.covered_scopes)


class TestCudnnPerformance:
    def test_cudnn_beats_native_on_lstm(self, device):
        model = build_stacked_lstm(TINY.scaled(batch_size=8, num_layers=2))
        nat = run_native(model.graph, device).total_time_us
        cud = run_cudnn(model.graph, device).total_time_us
        assert cud < nat

    def test_cudnn_noop_on_long_tail(self, tiny_sublstm, device):
        nat = run_native(tiny_sublstm.graph, device).total_time_us
        cud = run_cudnn(tiny_sublstm.graph, device).total_time_us
        assert cud == pytest.approx(nat)

    def test_plan_acyclic_and_covering(self, tiny_stacked_lstm, device):
        plan = cudnn_plan(tiny_stacked_lstm.graph)
        plan.validate_covering()
        Dispatcher(tiny_stacked_lstm.graph).lower(plan)  # must not raise

    def test_advantage_shrinks_with_batch(self, device):
        """cuDNN's edge is biggest at small batch (launch-bound regime).
        Needs realistic hidden sizes -- at toy scale everything is
        launch-bound and the effect disappears."""
        import repro.models.stacked_lstm as ST

        ratios = []
        for batch in (8, 256):
            model = build_stacked_lstm(
                ST.DEFAULT_CONFIG.scaled(batch_size=batch, seq_len=2)
            )
            nat = run_native(model.graph, device).total_time_us
            cud = run_cudnn(model.graph, device).total_time_us
            ratios.append(nat / cud)
        assert ratios[0] > ratios[1]


class TestXla:
    def test_xla_helps_without_embeddings(self, device):
        model = build_sublstm(TINY.scaled(use_embedding=False))
        nat = run_native(model.graph, device).total_time_us
        xla = run_xla(model.graph, device).total_time_us
        assert xla < nat

    def test_embedding_pathology(self, device):
        """Section 6.6: with embeddings XLA is *worse* than native.  The
        host round-trips must be priced against realistic tensor sizes."""
        model = build_sublstm(
            TINY.scaled(batch_size=16, hidden_size=128, embed_size=128,
                        vocab_size=2000, seq_len=4)
        )
        nat = run_native(model.graph, device).total_time_us
        xla = run_xla(model.graph, device).total_time_us
        assert xla > nat

    def test_host_transitions_present(self, tiny_sublstm, device):
        plan = xla_plan(tiny_sublstm.graph, device)
        lowered = Dispatcher(tiny_sublstm.graph).lower(plan)
        host_items = [i for i in lowered.items if isinstance(i, HostComputeItem)]
        transfers = [
            i for i in lowered.items
            if isinstance(i, LaunchItem) and i.kernel.kind == "transfer"
        ]
        assert host_items and transfers

    def test_no_host_transitions_without_embeddings(self, device):
        model = build_sublstm(TINY.scaled(use_embedding=False))
        plan = xla_plan(model.graph, device)
        lowered = Dispatcher(model.graph).lower(plan)
        assert not any(isinstance(i, HostComputeItem) for i in lowered.items)

    def test_xla_fuses_elementwise(self, device):
        model = build_sublstm(TINY.scaled(use_embedding=False))
        plan = xla_plan(model.graph, device)
        assert any(len(u.node_ids) > 1 for u in plan.units)

    def test_plan_covering_valid(self, tiny_scrnn, device):
        xla_plan(tiny_scrnn.graph, device).validate_covering()
