"""Serial == parallel: the engine's central contract.

Three tiers of equivalence, each pinned:

* **serial vs engine** (any worker count): identical winner, identical
  final epoch time, identical explored-config count, identical profile
  index *keys*.  Index *values* may differ in the last ulp: the wave
  enumerator holds deferred variables at their stale positions while a
  dependency is in flight, so a candidate's absolute timeline offsets
  shift and ``end - start`` can round differently (documented in
  ``docs/performance.md``).
* **engine@1 vs engine@N**: bit-identical everything -- same waves, same
  candidate ordinals, same merge order, regardless of how the waves were
  sharded across processes.
* the report carries the engine summary so runs are auditable.
"""

import pickle

import pytest

from repro.core.session import AstraSession
from repro.gpu import DEVICES
from repro.perf.bench import _clear_process_memos
from repro.perf.ranker import FastPath

FAST = FastPath(cache=True, prune=True)


def run_once(model, device_name="P100", workers=None, budget=400):
    _clear_process_memos()
    session = AstraSession(
        model, device=DEVICES[device_name], features="FK", seed=1,
        fast=FAST, workers=workers,
    )
    try:
        report = session.optimize(max_minibatches=budget)
    finally:
        session.close()
    return report, session.wirer.index.snapshot()


def fingerprint(report, index):
    """Everything byte-comparable between engine runs."""
    return pickle.dumps((
        {k: repr(v) for k, v in report.astra.assignment.items()},
        report.best_time_us,
        report.configs_explored,
        report.astra.exploration_time_us,
        report.astra.timeline,
        index,
    ))


@pytest.fixture(scope="module")
def scrnn_runs(tiny_scrnn):
    return {
        "serial": run_once(tiny_scrnn),
        "w1": run_once(tiny_scrnn, workers=1),
        "w2": run_once(tiny_scrnn, workers=2),
    }


class TestSerialVsEngine:
    @pytest.mark.parametrize("fixture", ["tiny_scrnn", "tiny_milstm"])
    @pytest.mark.parametrize("device_name", ["P100", "V100"])
    def test_winner_and_index_keys(self, request, fixture, device_name):
        model = request.getfixturevalue(fixture)
        serial_report, serial_index = run_once(model, device_name)
        engine_report, engine_index = run_once(model, device_name, workers=1)
        assert (
            {k: repr(v) for k, v in serial_report.astra.assignment.items()}
            == {k: repr(v) for k, v in engine_report.astra.assignment.items()}
        )
        assert serial_report.best_time_us == engine_report.best_time_us
        assert serial_report.configs_explored == engine_report.configs_explored
        assert (serial_report.astra.exploration_time_us
                == engine_report.astra.exploration_time_us)
        assert set(serial_index) == set(engine_index)
        for key, value in serial_index.items():
            assert engine_index[key] == pytest.approx(value, rel=1e-9)

    def test_serial_timeline_epoch_times_match(self, scrnn_runs):
        serial_report, _ = scrnn_runs["serial"]
        engine_report, _ = scrnn_runs["w1"]
        assert len(serial_report.astra.timeline) == len(engine_report.astra.timeline)
        assert ([p for p, _t in serial_report.astra.timeline]
                == [p for p, _t in engine_report.astra.timeline])


class TestEngineWorkerCountInvariance:
    def test_one_vs_two_workers_bit_identical(self, scrnn_runs):
        assert (fingerprint(*scrnn_runs["w1"])
                == fingerprint(*scrnn_runs["w2"]))

    def test_report_carries_engine_summary(self, scrnn_runs):
        report, _ = scrnn_runs["w2"]
        summary = report.astra.fast_path["parallel"]
        assert summary["workers"] == 2
        assert summary["pool"] in ("process", "inline")
        assert summary["candidates"] >= 0
        assert summary["inline_fallbacks"] == 0

    def test_serial_report_has_no_engine_summary(self, scrnn_runs):
        report, _ = scrnn_runs["serial"]
        assert report.astra.fast_path["parallel"] is None
