"""Pool construction, degradation, and the sharding policy.

The engine's determinism argument leans on one property pinned here:
concatenating shard results in shard order is exactly candidate-ordinal
order, for every (item count, worker count) pair.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.measurement import TRUSTING
from repro.gpu import P100
from repro.parallel import InlinePool, make_pool
from repro.parallel.engine import _shard, engine_supported
from repro.parallel.wire import WorkerSpec
from repro.perf.ranker import FastPath


def _spec(model, **overrides):
    fields = dict(
        graph=model.graph, device=P100, features="FK", seed=0,
        validate=False, policy=TRUSTING, fast=FastPath(),
    )
    fields.update(overrides)
    return WorkerSpec(**fields)


class TestShard:
    @given(n=st.integers(0, 200), workers=st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_concat_in_shard_order_is_original_order(self, n, workers):
        items = list(range(n))
        shards = _shard(items, workers)
        assert [x for shard in shards for x in shard] == items

    @given(n=st.integers(0, 200), workers=st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_balanced_and_bounded(self, n, workers):
        shards = _shard(list(range(n)), workers)
        assert len(shards) <= workers
        assert all(shard for shard in shards)  # no empty shards
        if shards:
            sizes = [len(s) for s in shards]
            assert max(sizes) - min(sizes) <= 1


class TestMakePool:
    def test_workers_one_is_inline(self, tiny_scrnn):
        pool = make_pool(_spec(tiny_scrnn), workers=1)
        assert isinstance(pool, InlinePool)
        assert pool.kind == "inline"
        pool.close()

    def test_unpicklable_spec_degrades_to_inline(self, tiny_scrnn):
        # a lambda can't cross a process boundary; the pool must degrade,
        # not die -- the engine still runs, merely without speedup
        pool = make_pool(_spec(tiny_scrnn, policy=lambda: None), workers=4)
        assert isinstance(pool, InlinePool)
        pool.close()

    def test_inline_pool_runs_worker_code(self, tiny_scrnn):
        from repro.core.enumerator import AstraFeatures

        pool = make_pool(
            _spec(tiny_scrnn, features=AstraFeatures.preset("FK")), workers=1
        )
        future = pool.run_shard([])
        assert future.result() == []
        pool.close()


class TestEngineSupported:
    def test_fk_tree_supported(self, tiny_scrnn):
        from repro.core.enumerator import AstraFeatures, Enumerator

        enum = Enumerator(tiny_scrnn.graph, P100, AstraFeatures.preset("FK"))
        tree = enum.build_fk_tree(enum.strategies[0])
        assert engine_supported(tree)

    def test_non_update_node_rejected(self):
        assert not engine_supported(object())
