"""ProfileIndex.merge: the canonical write path for worker measurements.

The merge invariants are what make the parallel engine safe to replay:
first-writer-wins dedupe (two workers measuring the same key must not
double-count), and sticky quarantine (a clean sample must never
resurrect a configuration the wirer quarantined).
"""

from repro.core import QUARANTINED_US
from repro.core.profile_index import ProfileIndex


class TestMergeDedupe:
    def test_first_writer_wins(self):
        index = ProfileIndex()
        out = index.merge([(("a",), 10.0), (("a",), 99.0)])
        assert index.get(("a",)) == 10.0
        assert out == {"merged": 1, "duplicates": 1, "quarantine_protected": 0}

    def test_existing_entry_not_overwritten_or_bumped(self):
        index = ProfileIndex()
        index.record(("a",), 10.0)
        hits_before = index._store[("a",)].hits
        out = index.merge({("a",): 99.0})
        assert index.get(("a",)) == 10.0
        assert index._store[("a",)].hits == hits_before
        assert out["duplicates"] == 1

    def test_accepts_mapping_and_iterable(self):
        for measurements in ({("a",): 1.0, ("b",): 2.0},
                             [(("a",), 1.0), (("b",), 2.0)]):
            index = ProfileIndex()
            out = index.merge(measurements)
            assert out["merged"] == 2
            assert index.get(("a",)) == 1.0
            assert index.get(("b",)) == 2.0

    def test_insertion_order_preserved(self):
        """Replaying worker results in candidate order must reproduce a
        serial run's store byte for byte -- dict order is part of the
        contract (checkpoints serialize entries in insertion order)."""
        index = ProfileIndex()
        index.merge([(("c",), 3.0), (("a",), 1.0), (("b",), 2.0)])
        assert list(index.snapshot()) == [("c",), ("a",), ("b",)]


class TestMergeQuarantine:
    def test_quarantine_never_overwritten(self):
        index = ProfileIndex()
        index.record(("bad",), QUARANTINED_US)
        out = index.merge({("bad",): 42.0})
        assert index.get(("bad",)) == QUARANTINED_US
        assert out == {"merged": 0, "duplicates": 0, "quarantine_protected": 1}

    def test_quarantine_on_quarantine_is_duplicate(self):
        index = ProfileIndex()
        index.record(("bad",), QUARANTINED_US)
        out = index.merge({("bad",): QUARANTINED_US})
        assert out["quarantine_protected"] == 0
        assert out["duplicates"] == 1

    def test_fresh_quarantine_merges(self):
        index = ProfileIndex()
        out = index.merge({("bad",): QUARANTINED_US})
        assert out["merged"] == 1
        assert index.get(("bad",)) == QUARANTINED_US
