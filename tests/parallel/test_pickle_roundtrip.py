"""Pickle round-trip safety for everything that crosses a process boundary.

The parallel engine ships :class:`WorkerSpec` at pool start and
:class:`CandidateTask` / :class:`CandidateOutcome` per wave; inside them
ride :class:`ExecutionPlan`, :class:`LoweredSchedule`,
:class:`MiniBatchResult` and worker-side exceptions.  A type that pickles
lossily corrupts measurements *silently*, so round-trips are pinned both
property-style (hypothesis over the value-carrying fields) and on real
enumerator-built plans (a round-tripped plan must execute bit-identically
to the original).
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.check import ScheduleValidationError
from repro.check.violations import RAW_RACE, ValidationReport, Violation
from repro.core.enumerator import AstraFeatures, Enumerator
from repro.faults.events import DeviceOOMError, KernelLaunchError
from repro.gpu import P100
from repro.parallel.wire import CandidateOutcome, CandidateTask, SampleRecord
from repro.runtime.executor import Executor, MiniBatchResult

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


results = st.builds(
    MiniBatchResult,
    total_time_us=finite,
    cpu_time_us=finite,
    profiling_overhead_us=finite,
    unit_times=st.dictionaries(st.integers(0, 2**31), finite, max_size=8),
    epoch_metrics=st.dictionaries(
        st.tuples(st.integers(0, 50), st.integers(0, 50)), finite, max_size=4
    ),
    raw=st.none(),
    faults=st.just([]),
)

tasks = st.builds(
    CandidateTask,
    ordinal=st.integers(0, 10_000),
    strategy_id=st.integers(0, 64),
    assignment=st.lists(
        st.tuples(st.text(max_size=12), st.integers(-8, 8)), max_size=6
    ).map(tuple),
    live_names=st.lists(st.text(max_size=12), max_size=6).map(tuple),
    base_minibatch=st.integers(0, 10**9),
    preempted=st.booleans(),
)


class TestValueRoundTrips:
    @given(result=results)
    @settings(max_examples=50, deadline=None)
    def test_minibatch_result(self, result):
        clone = roundtrip(result)
        assert clone == result
        assert clone.profiling_overhead_fraction == result.profiling_overhead_fraction

    @given(task=tasks)
    @settings(max_examples=50, deadline=None)
    def test_candidate_task(self, task):
        clone = roundtrip(task)
        assert clone == task
        assert clone.assignment_dict() == task.assignment_dict()

    @given(result=results, aborts=st.lists(
        st.tuples(st.sampled_from(["launch_fail", "slowdown"]),
                  st.text(max_size=20)), max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_candidate_outcome(self, result, aborts):
        outcome = CandidateOutcome(
            ordinal=3,
            samples=[SampleRecord(aborts=list(aborts), result=result)],
            var_units={"fusion:x": [1, 2]},
            counters={"recovery.retries": 2},
        )
        clone = roundtrip(outcome)
        assert clone.samples[0].result == result
        assert clone.samples[0].aborts == list(aborts)
        assert clone.var_units == outcome.var_units
        assert clone.counters == outcome.counters


class TestErrorRoundTrips:
    def test_schedule_validation_error_keeps_report(self):
        report = ValidationReport(
            violations=[Violation(RAW_RACE, (1, 2), "u1 before u2")],
            launches=3, dependencies=4, events=1, tensors=2, label="plan-x",
        )
        clone = roundtrip(ScheduleValidationError(report))
        assert isinstance(clone, ScheduleValidationError)
        assert clone.report.label == "plan-x"
        assert clone.report.kinds() == {RAW_RACE}
        assert str(clone) == str(ScheduleValidationError(report))

    def test_launch_error_round_trips(self):
        err = KernelLaunchError("gemm_k7", minibatch=12)
        clone = roundtrip(err)
        assert isinstance(clone, KernelLaunchError)
        assert clone.label == "gemm_k7"
        assert clone.minibatch == 12
        assert clone.transient is True

    def test_oom_error_round_trips(self):
        err = DeviceOOMError(2**34, 2**33, minibatch=4)
        clone = roundtrip(err)
        assert isinstance(clone, DeviceOOMError)
        assert (clone.arena_bytes, clone.capacity_bytes) == (2**34, 2**33)
        assert clone.transient is False


class TestPlanRoundTrips:
    @pytest.fixture(scope="class")
    def built(self, tiny_scrnn):
        enum = Enumerator(tiny_scrnn.graph, P100, AstraFeatures.preset("FK"))
        strategy = enum.strategies[0]
        tree = enum.build_fk_tree(strategy)
        return enum.build_plan(strategy, tree.assignment())

    def test_execution_plan_executes_identically(self, tiny_scrnn, built):
        clone = roundtrip(built.plan)
        assert clone.label == built.plan.label
        assert [u.node_ids for u in clone.units] == [
            u.node_ids for u in built.plan.units
        ]
        original = Executor(tiny_scrnn.graph, P100, seed=3).run(built.plan)
        replayed = Executor(tiny_scrnn.graph, P100, seed=3).run(clone)
        assert replayed.total_time_us == original.total_time_us
        assert replayed.unit_times == original.unit_times

    def test_lowered_schedule_round_trips(self, tiny_scrnn, built):
        from repro.runtime.dispatcher import Dispatcher

        lowered = Dispatcher(tiny_scrnn.graph).lower(built.plan)
        clone = roundtrip(lowered)
        assert clone.unit_record_index == lowered.unit_record_index
        assert clone.unit_stream == lowered.unit_stream
        assert len(clone.items) == len(lowered.items)
        assert clone.record_units == lowered.record_units
