"""The engine under fire: fault injection, preemption, checkpoint/resume.

Under the engine every candidate draws faults from a per-candidate
substream keyed by its base mini-batch ordinal, so fault decisions are a
function of *which* candidate runs, not *where* it runs -- engine runs
are bit-identical across worker counts even mid-chaos.  (A legacy serial
run draws from one rolling stream, so serial-vs-engine fault equality is
deliberately NOT claimed; the checkpoint signature keeps the two
exploration shapes from resuming each other.)
"""

import pickle

import pytest

from repro.core import MeasurementPolicy
from repro.core.session import AstraSession
from repro.faults import (
    FAULT_LAUNCH,
    FAULT_PREEMPT,
    FAULT_SLOWDOWN,
    FaultPlan,
    FaultSpec,
    PreemptionError,
)
from repro.gpu import DEVICES
from repro.perf.bench import _clear_process_memos
from repro.perf.ranker import FastPath

FAST = FastPath(cache=True, prune=True)
CHAOS = FaultPlan(
    specs=(
        FaultSpec(kind=FAULT_LAUNCH, rate=0.05),
        FaultSpec(kind=FAULT_SLOWDOWN, rate=0.2, factor=4.0),
    ),
    seed=7,
)
POLICY = MeasurementPolicy(samples=3, max_attempts=3)


def run_chaos(model, workers, budget=400):
    _clear_process_memos()
    session = AstraSession(
        model, device=DEVICES["P100"], features="FK", seed=1, fast=FAST,
        workers=workers, faults=CHAOS, policy=POLICY,
    )
    try:
        report = session.optimize(max_minibatches=budget)
    finally:
        session.close()
    return pickle.dumps((
        {k: repr(v) for k, v in report.astra.assignment.items()},
        report.best_time_us,
        report.configs_explored,
        report.astra.timeline,
        report.astra.fault_summary,
        session.wirer.index.snapshot(),
    ))


class TestFaultEquivalence:
    def test_chaos_bit_identical_across_worker_counts(self, tiny_scrnn):
        assert run_chaos(tiny_scrnn, 1) == run_chaos(tiny_scrnn, 2)


class TestCheckpointResume:
    def _preempt_then_resume(self, model, path, first_workers, resume_workers):
        _clear_process_memos()
        faults = FaultPlan(
            specs=CHAOS.specs + (FaultSpec(kind=FAULT_PREEMPT, at=5),),
            seed=7,
        )
        session = AstraSession(
            model, device=DEVICES["P100"], features="FK", seed=1, fast=FAST,
            workers=first_workers, faults=faults, policy=POLICY,
            checkpoint_path=path,
        )
        with pytest.raises(PreemptionError):
            try:
                session.optimize(max_minibatches=400)
            finally:
                session.close()
        session = AstraSession(
            model, device=DEVICES["P100"], features="FK", seed=1, fast=FAST,
            workers=resume_workers, faults=CHAOS, policy=POLICY,
            checkpoint_path=path,
        )
        try:
            report = session.optimize(max_minibatches=400)
        finally:
            session.close()
        return pickle.dumps((
            {k: repr(v) for k, v in report.astra.assignment.items()},
            report.best_time_us,
            session.wirer.index.snapshot(),
        ))

    def test_resume_worker_count_free(self, tiny_scrnn, tmp_path):
        """Preempt at workers=1, resume at workers=2: same final state as
        preempting and resuming at workers=1 -- the checkpoint pins the
        exploration, not the fleet size."""
        a = self._preempt_then_resume(
            tiny_scrnn, str(tmp_path / "a.json"), 1, 1
        )
        b = self._preempt_then_resume(
            tiny_scrnn, str(tmp_path / "b.json"), 1, 2
        )
        assert a == b

    def test_serial_checkpoint_refuses_parallel_resume(self, tiny_scrnn, tmp_path):
        """A legacy serial exploration and an engine exploration walk the
        tree differently; resuming one from the other's checkpoint would
        silently re-shape the search, so the signature forbids it."""
        path = str(tmp_path / "serial.json")
        faults = FaultPlan(specs=(FaultSpec(kind=FAULT_PREEMPT, at=5),))
        session = AstraSession(
            tiny_scrnn, device=DEVICES["P100"], features="FK", seed=1,
            fast=FAST, faults=faults, checkpoint_path=path,
        )
        with pytest.raises(PreemptionError):
            session.optimize(max_minibatches=400)
        with pytest.raises(ValueError, match="refusing to resume"):
            AstraSession(
                tiny_scrnn, device=DEVICES["P100"], features="FK", seed=1,
                fast=FAST, workers=1, checkpoint_path=path,
            )
