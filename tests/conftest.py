"""Shared fixtures: small traced models and the simulated device.

Model fixtures are session-scoped -- tracing + autodiff is deterministic
and the graphs are never mutated by the code under test.
"""

from __future__ import annotations

import pytest

from repro.gpu import P100
from repro.ir import Tracer, backward
from repro.models import (
    ModelConfig,
    build_gnmt,
    build_milstm,
    build_scrnn,
    build_stacked_lstm,
    build_sublstm,
)

#: tiny shapes keep simulator runs fast while preserving every structural
#: property (gates, ladders, fusion groups, epochs)
TINY = ModelConfig(batch_size=4, seq_len=3, hidden_size=32, embed_size=32, vocab_size=50)
SMALL = ModelConfig(batch_size=8, seq_len=4, hidden_size=64, embed_size=64, vocab_size=100)


@pytest.fixture(scope="session")
def device():
    return P100


@pytest.fixture(scope="session")
def tiny_scrnn():
    return build_scrnn(TINY)


@pytest.fixture(scope="session")
def tiny_sublstm():
    return build_sublstm(TINY)


@pytest.fixture(scope="session")
def tiny_milstm():
    return build_milstm(TINY)


@pytest.fixture(scope="session")
def tiny_stacked_lstm():
    return build_stacked_lstm(TINY.scaled(num_layers=2))


@pytest.fixture(scope="session")
def tiny_gnmt():
    return build_gnmt(TINY.scaled(num_layers=2))


@pytest.fixture(scope="session")
def small_sublstm():
    return build_sublstm(SMALL)


@pytest.fixture(scope="session")
def all_tiny_models(tiny_scrnn, tiny_sublstm, tiny_milstm, tiny_stacked_lstm, tiny_gnmt):
    return [tiny_scrnn, tiny_sublstm, tiny_milstm, tiny_stacked_lstm, tiny_gnmt]


@pytest.fixture()
def mlp_tracer():
    """A tiny hand-traced MLP graph (forward only) for IR-level tests."""
    tr = Tracer("mlp")
    x = tr.input((4, 8), label="x")
    w1 = tr.param((8, 16), label="w1")
    b1 = tr.param((16,), label="b1")
    w2 = tr.param((16, 4), label="w2")
    h = tr.tanh(x @ w1 + b1)
    out = h @ w2
    loss = tr.reduce_sum(out)
    tr.output(loss)
    return tr, loss
