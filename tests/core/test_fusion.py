"""Tests for static fusion analysis: ladders, groups, requirements."""

import pytest

from repro.core import analyse_fusion, detect_ladders, provenance
from repro.core.fusion import (
    MAX_FUSED_DIM,
    FusionGroup,
    Requirement,
    resolve_static_conflicts,
)
from repro.ir import Tracer
from repro.models import build_sublstm
from tests.conftest import TINY


class TestProvenance:
    def test_step_stripped(self):
        assert provenance("layer0/step3") == "layer0"
        assert provenance("encoder2/step11") == "encoder2"

    def test_no_step_unchanged(self):
        assert provenance("params") == "params"


class TestRequirement:
    def test_equality_ignores_label(self):
        a = Requirement((((1,), (2,))), "rows", label="x")
        b = Requirement((((1,), (2,))), "rows", label="y")
        assert a == b
        assert not a.conflicts_with(b)

    def test_conflict_on_overlap(self):
        a = Requirement(((1,), (2,)), "rows")
        b = Requirement(((2,), (3,)), "cols")
        assert a.conflicts_with(b)

    def test_no_conflict_disjoint(self):
        a = Requirement(((1,), (2,)), "rows")
        b = Requirement(((3,), (4,)), "rows")
        assert not a.conflicts_with(b)

    def test_same_tensors_different_tag_conflict(self):
        a = Requirement(((1,), (2,)), "rows")
        b = Requirement(((1,), (2,)), "cols")
        assert a.conflicts_with(b)


class TestLadderDetection:
    def test_paper_ladder_example(self):
        """%12 = add(mm(%1,%5), mm(%2,%6)) fuses into one GEMM (4.4.1)."""
        tr = Tracer()
        a1, b1 = tr.input((4, 8)), tr.param((8, 16))
        a2, b2 = tr.input((4, 12)), tr.param((12, 16))
        y = tr.add(tr.matmul(a1, b1), tr.matmul(a2, b2))
        tr.output(tr.sigmoid(y))
        ladders, taken = detect_ladders(tr.graph)
        assert len(ladders) == 1
        ladder = ladders[0]
        assert ladder.m == 4 and ladder.k_total == 20 and ladder.n == 16
        assert len(ladder.mm_ids) == 2
        assert y.node.node_id in ladder.absorbed_ids

    def test_longer_ladder(self):
        tr = Tracer()
        parts = []
        for i in range(3):
            a = tr.input((4, 8))
            b = tr.param((8, 16))
            parts.append(tr.matmul(a, b))
        y = tr.add(tr.add(parts[0], parts[1]), parts[2])
        tr.output(tr.tanh(y))
        ladders, _ = detect_ladders(tr.graph)
        assert len(ladders) == 1
        assert len(ladders[0].mm_ids) == 3
        assert ladders[0].k_total == 24

    def test_bias_residual_stays_outside(self):
        """x@W + h@U + b: the GEMMs fuse, the bias add survives."""
        tr = Tracer()
        x, w = tr.input((4, 8)), tr.param((8, 16))
        h, u = tr.input((4, 16)), tr.param((16, 16))
        bias = tr.param((16,))
        pre = tr.add(tr.add(tr.matmul(x, w), tr.matmul(h, u)), bias)
        tr.output(tr.sigmoid(pre))
        ladders, taken = detect_ladders(tr.graph)
        assert len(ladders) == 1
        assert pre.node.node_id not in taken  # bias add not absorbed

    def test_multi_consumer_mm_not_absorbed(self):
        tr = Tracer()
        x, w = tr.input((4, 8)), tr.param((8, 16))
        h, u = tr.input((4, 16)), tr.param((16, 16))
        mm1 = tr.matmul(x, w)
        mm2 = tr.matmul(h, u)
        tr.output(tr.add(mm1, mm2))
        tr.output(tr.relu(mm1))  # mm1 reused elsewhere
        ladders, _ = detect_ladders(tr.graph)
        assert ladders == []

    def test_shape_mismatch_blocks_ladder(self):
        tr = Tracer()
        a = tr.matmul(tr.input((4, 8)), tr.param((8, 16)))
        b = tr.matmul(tr.input((2, 8)), tr.param((8, 16)))
        # shapes (4,16) vs (2,16): cannot even add -- build a valid but
        # mixed-transpose ladder instead
        tr2 = Tracer()
        x = tr2.input((4, 8))
        w1 = tr2.param((8, 16))
        w2 = tr2.param((16, 8))
        y = tr2.add(tr2.matmul(x, w1), tr2.matmul(x, w2, transpose_b=True))
        tr2.output(tr2.relu(y))
        ladders, _ = detect_ladders(tr2.graph)
        assert ladders == []  # mixed transpose-B flags

    def test_ladder_requirement_layout(self):
        tr = Tracer()
        x, w = tr.input((4, 8)), tr.param((8, 16))
        h, u = tr.input((4, 16)), tr.param((16, 16))
        y = tr.add(tr.matmul(x, w), tr.matmul(h, u))
        tr.output(tr.sigmoid(y))
        ladders, _ = detect_ladders(tr.graph)
        req = ladders[0].ladder_requirement()
        assert req.tag == "rows"  # vertical stack [W; U]
        assert req.all_tensors() == {w.node.node_id, u.node.node_id}


class TestCommonArgGroups:
    def test_paper_common_arg_example(self):
        """%10 = mm(%1,%5); %11 = mm(%1,%6) -> one fused GEMM (4.4.1)."""
        tr = Tracer()
        x = tr.input((4, 8))
        w1, w2 = tr.param((8, 16)), tr.param((8, 16))
        with tr.scope("layer/step0"):
            y1, y2 = tr.matmul(x, w1), tr.matmul(x, w2)
        tr.output(tr.add(tr.sigmoid(y1), tr.tanh(y2)))
        analysis = analyse_fusion(tr.graph)
        groups = [g for g in analysis.groups if g.axis == "n"]
        assert len(groups) == 1
        assert groups[0].size == 2
        assert groups[0].requirement.tag == "cols"

    def test_dependent_gemms_not_grouped(self):
        tr = Tracer()
        x = tr.input((8, 8))
        w1, w2 = tr.param((8, 8)), tr.param((8, 8))
        with tr.scope("l/step0"):
            y1 = tr.matmul(x, w1)
            y2 = tr.matmul(tr.sigmoid(y1) @ tr.param((8, 8)), w2)  # depends on y1
        tr.output(y2)
        analysis = analyse_fusion(tr.graph)
        for g in analysis.groups:
            members_nodes = [set(mb.mm_ids) for mb in g.members]
            assert y1.node.node_id not in {n for s in members_nodes for n in s} or g.size < 2

    def test_sublstm_gate_block(self, tiny_sublstm):
        """The 4-gate 2-D fusion set (block layout requirement)."""
        analysis = analyse_fusion(tiny_sublstm.graph)
        blocks = [
            g for g in analysis.groups
            if g.axis == "n" and g.pass_tag == "forward" and g.requirement.tag == "block"
        ]
        assert len(blocks) == TINY.seq_len
        assert all(g.size == 4 for g in blocks)

    def test_cross_step_batching(self, tiny_scrnn):
        """x_t @ B across steps share their B-side: M-axis group."""
        analysis = analyse_fusion(tiny_scrnn.graph)
        m_groups = [g for g in analysis.groups if g.axis == "m"]
        assert any(g.size == TINY.seq_len for g in m_groups)

    def test_chunk_choices_powers_of_two(self):
        tr = Tracer()
        x = tr.input((4, 8))
        with tr.scope("l/step0"):
            outs = [tr.matmul(x, tr.param((8, 16))) for _ in range(12)]
        for o in outs:
            tr.output(tr.sigmoid(o))
        analysis = analyse_fusion(tr.graph)
        group = next(g for g in analysis.groups if g.size == 12)
        assert group.chunk_choices() == [1, 2, 4, 8, 12]

    def test_chunk_cap_static_knowledge(self):
        """Section 4.8: fusion beyond a width cap is not enumerated."""
        tr = Tracer()
        x = tr.input((4, 64))
        wide = MAX_FUSED_DIM // 2 + 64
        with tr.scope("l/step0"):
            outs = [tr.matmul(x, tr.param((64, wide))) for _ in range(4)]
        for o in outs:
            tr.output(tr.sigmoid(o))
        analysis = analyse_fusion(tr.graph)
        group = next(g for g in analysis.groups if g.size == 4)
        assert max(group.chunk_choices()) == 1

    def test_launch_dims(self):
        tr = Tracer()
        x = tr.input((4, 8))
        with tr.scope("l/step0"):
            outs = [tr.matmul(x, tr.param((8, 16))) for _ in range(4)]
        for o in outs:
            tr.output(tr.sigmoid(o))
        group = next(g for g in analyse_fusion(tr.graph).groups if g.size == 4)
        assert group.launch_dims(group.members[:2]) == (4, 8, 32)
        assert group.launch_dims(group.members) == (4, 8, 64)


class TestStaticResolution:
    def test_single_tensor_conflict_resolved(self):
        """Section 4.5.2: a one-tensor overlap shrinks both groups."""
        tr = Tracer()
        x = tr.input((4, 8))
        shared = tr.param((8, 16), label="shared")
        with tr.scope("a/step0"):
            g1 = [tr.matmul(x, shared), tr.matmul(x, tr.param((8, 16))),
                  tr.matmul(x, tr.param((8, 16)))]
        y = tr.input((4, 16))
        with tr.scope("b/step0"):
            g2 = [tr.matmul(y, shared, transpose_b=True),
                  tr.matmul(y, tr.param((8, 16)), transpose_b=True),
                  tr.matmul(y, tr.param((8, 16)), transpose_b=True)]
        for o in g1 + g2:
            tr.output(tr.sigmoid(o))
        analysis = resolve_static_conflicts(analyse_fusion(tr.graph))
        reqs = [g.requirement for g in analysis.groups if g.requirement]
        for r1 in reqs:
            for r2 in reqs:
                if r1 is not r2:
                    assert not r1.conflicts_with(r2)
        # both groups survive with 2 members each
        sizes = sorted(g.size for g in analysis.groups if g.axis == "n")
        assert sizes == [2, 2]

    def test_multi_tensor_conflict_untouched(self, tiny_sublstm):
        """Gate-block vs backward-ladder conflicts share 4 tensors: left
        for the allocation fork, not static resolution."""
        analysis = resolve_static_conflicts(analyse_fusion(tiny_sublstm.graph))
        reqs = []
        for g in analysis.groups:
            if g.requirement:
                reqs.append(g.requirement)
        reqs.extend(analysis.ladder_requirements)
        conflicts = [
            (a, b)
            for i, a in enumerate(reqs)
            for b in reqs[i + 1:]
            if a.conflicts_with(b)
        ]
        assert conflicts  # subLSTM genuinely needs the allocation fork


class TestCoverageInvariants:
    @pytest.mark.parametrize("fixture", [
        "tiny_scrnn", "tiny_sublstm", "tiny_milstm", "tiny_stacked_lstm", "tiny_gnmt",
    ])
    def test_every_gemm_accounted_once(self, fixture, request):
        model = request.getfixturevalue(fixture)
        analysis = resolve_static_conflicts(analyse_fusion(model.graph))
        seen: set[int] = set()
        for g in analysis.groups:
            for mb in g.members:
                for mm in mb.mm_ids:
                    assert mm not in seen, f"GEMM %{mm} in two members"
                    seen.add(mm)
        for mb in analysis.singletons:
            for mm in mb.mm_ids:
                assert mm not in seen
                seen.add(mm)
        all_gemms = {n.node_id for n in model.graph.gemm_nodes()}
        assert seen == all_gemms

    def test_members_mutually_independent(self, tiny_sublstm):
        g = tiny_sublstm.graph
        analysis = analyse_fusion(g)
        for group in analysis.groups:
            outs = [max(mb.node_ids) for mb in group.members]
            for i, mb in enumerate(group.members):
                for j, out in enumerate(outs):
                    if i != j:
                        for mm in mb.mm_ids:
                            assert not (mm > out and g.depends_on(mm, out))
