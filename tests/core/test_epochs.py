"""Tests for epoch/super-epoch partitioning and equivalence classes."""

import pytest

from repro.core import partition_epochs
from repro.core.epochs import (
    MAX_EPOCH_OPTIONS,
    MIN_EPOCH_ADAPT_US,
    _count_splits,
    _enumerate_options,
)
from repro.gpu import P100
from repro.gpu.kernels import GemmLaunch
from repro.runtime import Dispatcher, ExecutionPlan, Unit, build_units


@pytest.fixture()
def partitioned(tiny_sublstm):
    units = build_units(tiny_sublstm.graph)
    plan = ExecutionPlan(units=units)
    deps = Dispatcher(tiny_sublstm.graph).unit_dependencies(plan)
    partition = partition_epochs(units, deps, P100, num_streams=2)
    return units, deps, partition


class TestPartition:
    def test_every_unit_assigned(self, partitioned):
        units, _deps, partition = partitioned
        assert set(partition.coordinates) == {u.unit_id for u in units}

    def test_epochs_are_antichains(self, tiny_sublstm, partitioned):
        """Units within an epoch must be mutually independent."""
        units, deps, partition = partitioned
        for epoch in partition.epochs:
            for uid in epoch.unit_ids:
                assert not (deps[uid] & set(epoch.unit_ids))

    def test_coordinates_written_to_units(self, partitioned):
        units, _deps, partition = partitioned
        for unit in units:
            assert (unit.super_epoch, unit.epoch) == partition.coordinates[unit.unit_id]

    def test_dependencies_flow_forward(self, partitioned):
        """A unit's dependencies live in earlier (or equal) coordinates."""
        units, deps, partition = partitioned
        for uid, parent_ids in deps.items():
            se, e = partition.coordinates[uid]
            for parent in parent_ids:
                pse, pe = partition.coordinates[parent]
                assert (pse, pe) < (se, e)

    def test_super_epoch_boundaries_reset(self, partitioned):
        """Barrier units are the last unit of each non-final super-epoch."""
        units, _deps, partition = partitioned
        barriers = partition.barrier_units()
        assert len(barriers) == partition.num_super_epochs - 1

    def test_deep_model_multiple_super_epochs(self, tiny_gnmt):
        units = build_units(tiny_gnmt.graph)
        deps = Dispatcher(tiny_gnmt.graph).unit_dependencies(ExecutionPlan(units=units))
        partition = partition_epochs(units, deps, P100, target_us=200.0)
        assert partition.num_super_epochs > 2


class TestEquivalenceOptions:
    def _units(self, shapes):
        return {
            i: Unit(i, GemmLaunch(*shape, "cublas"), (i + 1,))
            for i, shape in enumerate(shapes)
        }

    def test_equivalent_kernels_counted_not_permuted(self):
        """Section 4.5.5: 10 identical kernels over 2 streams is a count
        split, not 2^10 assignments."""
        units = self._units([(64, 64, 64)] * 10)
        options = _enumerate_options(list(units), units, 2)
        assert len(options) <= 11

    def test_heterogeneous_kernels_enumerated(self):
        units = self._units([(64, 64, 64), (32, 128, 32), (16, 16, 256)])
        options = _enumerate_options(list(units), units, 2)
        assert len(options) > 3

    def test_option_cap(self):
        units = self._units([(64, 64 + i, 64) for i in range(8)])
        options = _enumerate_options(list(units), units, 2)
        assert len(options) <= MAX_EPOCH_OPTIONS

    def test_first_option_single_stream(self):
        units = self._units([(64, 64, 64)] * 4)
        options = _enumerate_options(list(units), units, 2)
        assert set(options[0].values()) == {0}

    def test_flop_balance_pruning(self):
        """Section 4.8: grossly unbalanced assignments are not enumerated."""
        units = self._units([(512, 1024, 1024), (8, 8, 8)])
        options = _enumerate_options(list(units), units, 2)
        for option in options:
            # the tiny kernel alone on a stream with the giant on the other
            # is fine, but the giant alone opposite nothing-but-tiny is the
            # only shape available; just confirm pruning kept a valid set
            assert set(option.values()) <= {0, 1}

    def test_single_unit_trivial(self):
        units = self._units([(64, 64, 64)])
        assert _enumerate_options(list(units), units, 2) == [{0: 0}]

    def test_count_splits(self):
        splits = _count_splits(3, 2)
        assert (3, 0) in splits and (0, 3) in splits and len(splits) == 4
        assert splits[0] == (3, 0)  # most-serial first

    def test_count_splits_single_stream(self):
        assert _count_splits(5, 1) == [(5,)]


class TestStaticKnowledgePruning:
    def test_trivial_epochs_not_adapted(self, tiny_scrnn):
        """Epochs under the static time floor get a single option."""
        units = build_units(tiny_scrnn.graph)
        deps = Dispatcher(tiny_scrnn.graph).unit_dependencies(ExecutionPlan(units=units))
        partition = partition_epochs(units, deps, P100)
        tiny_epochs = [e for e in partition.epochs if len(e.options) == 1]
        assert tiny_epochs  # the tiny model has many sub-threshold epochs
