"""Tests for the custom-wirer and the public AstraSession API."""

import pytest

from repro import AstraSession
from repro.core import AstraFeatures, CustomWirer, ProfileIndex
from repro.gpu import CLOCK_AUTOBOOST, P100
from repro.models import build_sublstm
from tests.conftest import SMALL, TINY


@pytest.fixture(scope="module")
def fk_report(small_sublstm):
    session = AstraSession(small_sublstm, features="FK", seed=1)
    return session.optimize()


class TestOptimization:
    def test_speedup_over_native(self, fk_report):
        assert fk_report.speedup_over_native > 1.0

    def test_feature_ordering(self, small_sublstm):
        """More adaptation dimensions never hurt the final plan."""
        times = {}
        for preset in ("F", "FK", "FKS"):
            rep = AstraSession(small_sublstm, features=preset, seed=1).optimize()
            times[preset] = rep.best_time_us
        assert times["FK"] <= times["F"] * 1.001
        assert times["FKS"] <= times["FK"] * 1.001

    def test_work_conserving_exploration(self, fk_report):
        """Every exploration config is a full training mini-batch; the
        count is reported (Table 7's unit of measure)."""
        assert fk_report.configs_explored >= 2

    def test_best_plan_runs_without_profiling(self, fk_report):
        assert fk_report.astra.best_plan.profile is False

    def test_profiling_overhead_below_paper_bound(self):
        """Section 6.4: profiling overhead < 0.5%, so it can be always on.
        Measured at paper-scale shapes (toy models inflate the relative
        cost of event marking)."""
        import repro.models.sublstm as SU

        model = build_sublstm(SU.DEFAULT_CONFIG.scaled(batch_size=16, seq_len=4))
        rep = AstraSession(model, features="FK", seed=1).optimize()
        assert rep.astra.profiling_overhead < 0.005

    def test_exploration_is_deterministic(self, small_sublstm):
        r1 = AstraSession(small_sublstm, features="FK", seed=1).optimize()
        r2 = AstraSession(small_sublstm, features="FK", seed=1).optimize()
        assert r1.best_time_us == r2.best_time_us
        assert r1.configs_explored == r2.configs_explored

    def test_budget_respected(self, small_sublstm):
        rep = AstraSession(small_sublstm, features="FKS", seed=1).optimize(
            max_minibatches=5
        )
        assert rep.configs_explored <= 5 + 2 * 2  # + per-strategy best runs

    def test_assignment_reported(self, fk_report):
        assert any(k.startswith("fusion:") for k in fk_report.astra.assignment)


class TestProfileIndexUse:
    def test_index_shared_across_wirers(self, small_sublstm):
        """A pre-warmed index eliminates re-measurement (section 4.6)."""
        index = ProfileIndex()
        w1 = CustomWirer(
            small_sublstm.graph, P100, AstraFeatures.preset("FK"), index=index
        )
        r1 = w1.optimize()
        w2 = CustomWirer(
            small_sublstm.graph, P100, AstraFeatures.preset("FK"), index=index
        )
        r2 = w2.optimize()
        assert r2.configs_explored < r1.configs_explored

    def test_contexts_isolate_measurements(self, small_sublstm):
        index = ProfileIndex()
        w1 = CustomWirer(
            small_sublstm.graph, P100, AstraFeatures.preset("F"),
            context=("bucket", 0), index=index,
        )
        w1.optimize()
        entries_after_first = len(index)
        w2 = CustomWirer(
            small_sublstm.graph, P100, AstraFeatures.preset("F"),
            context=("bucket", 1), index=index,
        )
        w2.optimize()
        assert len(index) > entries_after_first

    def test_phase_stats_reported(self, small_sublstm):
        rep = AstraSession(small_sublstm, features="FKS", seed=1).optimize()
        names = [p.name for p in rep.astra.phases]
        assert any(n.startswith("fk/") for n in names)
        assert any(n.startswith("streams/") for n in names)


class TestAllocationFork:
    def test_all_explores_multiple_strategies(self, small_sublstm):
        rep = AstraSession(small_sublstm, features="all", seed=1).optimize()
        assert len(rep.astra.strategy_times) >= 2

    def test_best_strategy_is_argmin(self, small_sublstm):
        rep = AstraSession(small_sublstm, features="all", seed=1).optimize()
        best = rep.astra.best_strategy.strategy_id
        assert rep.astra.strategy_times[best] == min(rep.astra.strategy_times.values())

    def test_all_never_worse_than_fks(self, small_sublstm):
        fks = AstraSession(small_sublstm, features="FKS", seed=1).optimize()
        alla = AstraSession(small_sublstm, features="all", seed=1).optimize()
        assert alla.best_time_us <= fks.best_time_us * 1.001


class TestRobustness:
    def test_autoboost_degrades_adaptation(self):
        """Section 7: fine-grained profiling needs predictable execution.
        Under autoboost jitter the wirer's measurements are noisy, and the
        resulting plan (evaluated on a deterministic device) is no better
        -- usually worse -- than the one found at base clock."""
        model = build_sublstm(SMALL)
        base_rep = AstraSession(model, features="FK", seed=3).optimize()
        jittery = AstraSession(
            model, device=P100.with_clock(CLOCK_AUTOBOOST), features="FK", seed=3
        ).optimize()
        # evaluate both final plans on the deterministic device
        from repro.runtime import Executor

        base_time = Executor(model.graph, P100).run(base_rep.astra.best_plan).total_time_us
        jitter_time = Executor(model.graph, P100).run(jittery.astra.best_plan).total_time_us
        assert base_time <= jitter_time * 1.02

    def test_inference_graph_optimizable(self):
        model = build_sublstm(TINY.scaled(train=False))
        rep = AstraSession(model, features="F", seed=0).optimize()
        assert rep.speedup_over_native >= 1.0


class TestObservability:
    """The obs hooks observe the exploration; they must never steer it."""

    def test_disabled_observability_changes_nothing(self, tiny_sublstm):
        from repro.obs import MetricsRegistry, RunReporter
        from repro.obs.trace import Tracer

        plain = AstraSession(tiny_sublstm, features="FK", seed=2).optimize()
        observed = AstraSession(
            tiny_sublstm, features="FK", seed=2,
            metrics=MetricsRegistry(), reporter=RunReporter(), tracer=Tracer(),
        ).optimize()
        assert observed.best_time_us == plain.best_time_us
        assert observed.configs_explored == plain.configs_explored
        assert observed.astra.timeline == plain.astra.timeline
        assert observed.astra.assignment == plain.astra.assignment

    def test_metrics_agree_with_report(self, tiny_sublstm):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        rep = AstraSession(
            tiny_sublstm, features="FK", seed=0, metrics=metrics
        ).optimize()
        astra = rep.astra
        assert metrics.counter("astra.configs_explored").value == astra.configs_explored
        assert metrics.gauge("astra.best_time_us").value == astra.best_time_us
        assert metrics.gauge("profile_index.entries").value == astra.profile_entries
        for phase in astra.phases:
            gauge = metrics.gauge(f"astra.index_hit_rate.{phase.name}")
            assert gauge.value == pytest.approx(phase.index_hit_rate)
            hits = metrics.counter(f"astra.index_hits.{phase.name}").value
            assert hits == phase.index_hits

    def test_best_so_far_series_is_non_increasing(self, tiny_sublstm):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        AstraSession(
            tiny_sublstm, features="FK", seed=0, metrics=metrics
        ).optimize()
        values = [v for _s, v in metrics.series("astra.best_so_far_us").points]
        assert values == sorted(values, reverse=True)
        assert len(values) >= 2

    def test_phase_stats_hit_rate(self):
        from repro.core import PhaseStats

        stats = PhaseStats(name="fk", minibatches=3, index_hits=1)
        assert stats.index_hit_rate == pytest.approx(0.25)
        assert PhaseStats(name="empty").index_hit_rate == 0.0

    def test_shared_index_raises_hit_rate_on_rerun(self, tiny_sublstm):
        """Re-optimizing with a warm profile index should answer phases
        from the index -- visible in the new hit-rate metric."""
        index = ProfileIndex()
        first = AstraSession(
            tiny_sublstm, features="FK", seed=0, index=index
        ).optimize()
        second = AstraSession(
            tiny_sublstm, features="FK", seed=0, index=index
        ).optimize()
        cold = [p.index_hit_rate for p in first.astra.phases]
        warm = [p.index_hit_rate for p in second.astra.phases]
        assert all(w >= c for w, c in zip(warm, cold))
        assert any(w > 0 for w in warm)
