"""Tests for the recomputation (memory-for-compute) dimension (§3.4)."""

import pytest

from repro.core.recompute import (
    BatchDecision,
    RecomputePlanner,
    best_batch_under_budget,
    estimate_memory,
)
from repro.gpu import P100
from repro.models import build_sublstm
from tests.conftest import TINY


@pytest.fixture(scope="module")
def planner():
    model = build_sublstm(TINY)
    return RecomputePlanner(model, P100)


class TestMemoryEstimate:
    def test_components_positive(self, tiny_sublstm):
        memory = estimate_memory(tiny_sublstm.graph)
        assert memory.param_bytes > 0
        assert memory.activation_bytes > 0
        assert memory.total_bytes > memory.param_bytes

    def test_activations_scale_with_batch(self):
        small = estimate_memory(build_sublstm(TINY).graph)
        big = estimate_memory(build_sublstm(TINY.scaled(batch_size=16)).graph)
        assert big.activation_bytes > small.activation_bytes
        # parameters do not depend on batch
        assert big.param_bytes == small.param_bytes


class TestSegments:
    def test_one_segment_per_forward_step(self, planner):
        segments = planner.segments()
        step_scopes = {s.scope for s in segments if s.scope.startswith("layer0")}
        assert len(step_scopes) == TINY.seq_len

    def test_measured_costs_positive(self, planner):
        for segment in planner.segments():
            assert segment.recompute_us > 0
            assert segment.activation_bytes > 0

    def test_segments_cached(self, planner):
        assert planner.segments() is planner.segments()


class TestBudgetPlanning:
    def test_loose_budget_no_recompute(self, planner):
        memory = estimate_memory(planner.graph)
        plan = planner.plan_under_budget(memory.total_bytes * 2)
        assert plan.segments == []
        assert plan.fits

    def test_tight_budget_selects_segments(self, planner):
        memory = estimate_memory(planner.graph)
        budget = memory.total_bytes - memory.activation_bytes // 4
        plan = planner.plan_under_budget(budget)
        assert plan.segments
        assert plan.freed_bytes > 0
        assert plan.extra_time_us > 0

    def test_impossible_budget_reported(self, planner):
        plan = planner.plan_under_budget(1024)  # absurd: nothing fits
        assert not plan.fits

    def test_greedy_prefers_cheap_bytes(self, planner):
        memory = estimate_memory(planner.graph)
        plan = planner.plan_under_budget(memory.total_bytes - 1)
        if len(plan.segments) >= 1 and len(planner.segments()) >= 2:
            ratios = [
                s.recompute_us / s.activation_bytes for s in planner.segments()
            ]
            chosen_ratio = plan.segments[0].recompute_us / plan.segments[0].activation_bytes
            assert chosen_ratio == pytest.approx(min(ratios))


class TestBatchDecision:
    def test_measured_decision_under_budget(self):
        config = TINY
        model = build_sublstm(config)
        memory = estimate_memory(model.graph)
        # budget fits 2x batch only with recomputation
        big = estimate_memory(build_sublstm(config.scaled(batch_size=config.batch_size * 2)).graph)
        budget = big.total_bytes - big.activation_bytes // 3
        decisions = best_batch_under_budget(
            build_sublstm, config, budget, batch_factors=(1, 2)
        )
        assert decisions, "at least batch B must fit"
        batches = {d.batch_size for d in decisions}
        assert config.batch_size in batches
        # decisions sorted by measured per-sample time
        per_sample = [d.per_sample_us for d in decisions]
        assert per_sample == sorted(per_sample)

    def test_larger_batch_better_per_sample_when_it_fits(self):
        """The paper's motivating dynamic: at small batch the GPU is
        underutilized, so 2x batch (even with recompute) wins per sample."""
        config = TINY.scaled(batch_size=4, hidden_size=64, embed_size=64)
        decisions = best_batch_under_budget(
            build_sublstm, config, budget_bytes=10**12, batch_factors=(1, 2)
        )
        best = decisions[0]
        assert best.batch_size == 8  # bigger batch wins per-sample


class TestLivenessIntegration:
    def test_peak_with_monotone_in_segments(self, planner):
        """Recomputing more segments never raises the liveness-accurate
        peak."""
        segments = planner.segments()
        none = planner.peak_with([])
        all_ = planner.peak_with(segments)
        # first-fit packing is not strictly monotone per segment, but
        # recomputing everything must beat keeping everything
        assert all_ < none

    def test_liveness_peak_below_no_reuse_arena(self, planner):
        """Arena reuse beats the sum-of-all-tensors footprint."""
        from repro.gpu.liveness import plan_with_reuse

        plan = plan_with_reuse(planner.graph)
        assert plan.peak_bytes < plan.naive_bytes
