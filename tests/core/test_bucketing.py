"""Tests for bucketed adaptation on dynamic graphs (section 5.5)."""

import pytest

from repro.core import run_bucketed
from repro.models import PTB_LENGTHS, LengthDistribution, build_sublstm
from tests.conftest import TINY


@pytest.fixture(scope="module")
def bucket_report():
    return run_bucketed(
        build_sublstm,
        TINY,
        LengthDistribution("toy", mean_log=1.5, sigma_log=0.5, min_len=2, max_len=10),
        num_buckets=3,
        num_samples=30,
        features="F",
    )


class TestBucketedAdaptation:
    def test_speedup_over_dynamic_native(self, bucket_report):
        """Table 8: bucketed Astra beats native dynamic graphs."""
        assert bucket_report.speedup > 1.0

    def test_bucket_count(self, bucket_report):
        assert 1 <= len(bucket_report.buckets) <= 3
        assert len(bucket_report.outcomes) == len(bucket_report.buckets)

    def test_each_bucket_explored_independently(self, bucket_report):
        assert all(o.configs_explored >= 1 for o in bucket_report.outcomes)
        assert bucket_report.total_configs == sum(
            o.configs_explored for o in bucket_report.outcomes
        )

    def test_padding_overhead_bounded(self, bucket_report):
        """Mapping to the nearest larger bucket wastes some compute, but
        quantile buckets keep it modest."""
        assert 0.0 <= bucket_report.padding_overhead < 0.35

    def test_larger_buckets_slower(self, bucket_report):
        times = [o.best_time_us for o in bucket_report.outcomes]
        assert times == sorted(times)

    def test_bucket_context_multiplies_state_space(self, bucket_report):
        """Section 5.5: the profile index is keyed by bucket, so entries
        accumulate per bucket."""
        assert bucket_report.profile_entries > len(bucket_report.buckets)
