"""Tests for the enumerator: update trees and plan instantiation."""

import pytest

from repro.core import AstraFeatures, Enumerator
from repro.gpu import P100
from repro.runtime import Dispatcher


@pytest.fixture()
def enum_fk(tiny_sublstm):
    return Enumerator(tiny_sublstm.graph, P100, AstraFeatures.preset("FK"))


class TestFeaturePresets:
    def test_presets(self):
        assert AstraFeatures.preset("F").kernel is False
        assert AstraFeatures.preset("FK").kernel is True
        assert AstraFeatures.preset("FKS").streams is True
        assert AstraFeatures.preset("all").allocation is True

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            AstraFeatures.preset("XYZ")

    def test_allocation_gates_strategy_count(self, tiny_sublstm):
        fk = Enumerator(tiny_sublstm.graph, P100, AstraFeatures.preset("FK"))
        alla = Enumerator(tiny_sublstm.graph, P100, AstraFeatures.preset("all"))
        assert len(fk.strategies) == 1
        assert len(alla.strategies) >= 2


class TestFkTree:
    def test_tree_has_fusion_variables(self, enum_fk):
        tree = enum_fk.build_fk_tree(enum_fk.strategies[0])
        names = [v.name for v in tree.variables()]
        assert any(n.startswith("fusion:") for n in names)

    def test_kernel_variables_only_with_k(self, tiny_sublstm):
        f_only = Enumerator(tiny_sublstm.graph, P100, AstraFeatures.preset("F"))
        tree = f_only.build_fk_tree(f_only.strategies[0])
        for var in tree.variables():
            if var.name.startswith("fusion:"):
                libs = {lib for (_c, lib) in var.choices}
                assert libs == {"cublas"}
            assert not var.name.startswith("kernel:")

    def test_fk_has_library_choices(self, enum_fk):
        tree = enum_fk.build_fk_tree(enum_fk.strategies[0])
        fusion_vars = [v for v in tree.variables() if v.name.startswith("fusion:")]
        libs = {lib for v in fusion_vars for (_c, lib) in v.choices}
        assert libs == {"cublas", "oai_1", "oai_2"}

    def test_root_is_parallel(self, enum_fk):
        tree = enum_fk.build_fk_tree(enum_fk.strategies[0])
        assert tree.mode == "parallel"


class TestPlanBuilding:
    def test_default_assignment_builds_valid_plan(self, enum_fk, tiny_sublstm):
        strategy = enum_fk.strategies[0]
        tree = enum_fk.build_fk_tree(strategy)
        built = enum_fk.build_plan(strategy, tree.assignment())
        built.plan.validate_covering()
        Dispatcher(tiny_sublstm.graph).lower(built.plan)

    def test_every_gemm_node_covered(self, enum_fk, tiny_sublstm):
        strategy = enum_fk.strategies[0]
        tree = enum_fk.build_fk_tree(strategy)
        built = enum_fk.build_plan(strategy, tree.assignment())
        covered = {nid for u in built.plan.units for nid in u.node_ids}
        for node in tiny_sublstm.graph.gemm_nodes():
            assert node.node_id in covered

    def test_chunking_changes_unit_count(self, enum_fk):
        strategy = enum_fk.strategies[0]
        tree = enum_fk.build_fk_tree(strategy)
        base = tree.assignment()
        fused = dict(base)
        unfused = dict(base)
        target = next(n for n in base if n.startswith("fusion:") and "block" not in n)
        var = next(v for v in tree.variables() if v.name == target)
        chunks = sorted({c for (c, _l) in var.choices})
        if len(chunks) > 1:
            unfused[target] = (chunks[0], "cublas")
            fused[target] = (chunks[-1], "cublas")
            n_unfused = len(enum_fk.build_plan(strategy, unfused).plan.units)
            n_fused = len(enum_fk.build_plan(strategy, fused).plan.units)
            assert n_fused < n_unfused

    def test_var_units_attribution_complete(self, enum_fk):
        """Every live variable must own at least one unit so its metric is
        measurable (the custom-wirer depends on this)."""
        strategy = enum_fk.strategies[0]
        tree = enum_fk.build_fk_tree(strategy)
        built = enum_fk.build_plan(strategy, tree.assignment())
        for var in tree.variables():
            assert built.var_units.get(var.name), f"{var.name} owns no units"

    def test_var_units_attribution_under_every_choice(self, enum_fk):
        """Attribution must hold for chunked and unfused choices alike."""
        strategy = enum_fk.strategies[0]
        tree = enum_fk.build_fk_tree(strategy)
        for var in tree.variables():
            if not var.name.startswith("fusion:"):
                continue
            for choice in var.choices[:4]:
                assignment = tree.assignment()
                assignment[var.name] = choice
                built = enum_fk.build_plan(strategy, assignment)
                assert built.var_units.get(var.name)

    def test_library_assignment_respected(self, enum_fk):
        strategy = enum_fk.strategies[0]
        tree = enum_fk.build_fk_tree(strategy)
        assignment = tree.assignment()
        target = next(n for n in assignment if n.startswith("fusion:"))
        chunk, _lib = assignment[target]
        assignment[target] = (chunk, "oai_2")
        built = enum_fk.build_plan(strategy, assignment)
        libs = {
            built.plan.unit_by_id(uid).kernel.library
            for uid in built.var_units[target]
            if built.plan.unit_by_id(uid).kernel.kind == "gemm"
        }
        assert libs == {"oai_2"}

    def test_unsupported_group_chunked_requires_gather(self, tiny_sublstm):
        """Fusing under an unsatisfied layout inserts pack/gather copies."""
        enum = Enumerator(tiny_sublstm.graph, P100, AstraFeatures.preset("all"))
        # find a strategy and group it does NOT support
        found = None
        for strategy in enum.strategies:
            for group in enum.analysis.groups:
                if not strategy.supports(group.requirement) and group.chunk_choices()[-1] > 1:
                    found = (strategy, group)
                    break
            if found:
                break
        assert found, "expected at least one unsupported group"
        strategy, group = found
        tree = enum.build_fk_tree(strategy)
        assignment = tree.assignment()
        chunk = group.chunk_choices()[-1]
        assignment[f"fusion:{group.group_id}"] = (chunk, "cublas")
        built = enum.build_plan(strategy, assignment)
        units = [built.plan.unit_by_id(u) for u in built.var_units[f"fusion:{group.group_id}"]]
        has_gather = any(
            u.pre_copies or u.label.startswith("pack") for u in units
        )
        assert has_gather

    def test_profile_unit_ids_restricted(self, enum_fk):
        strategy = enum_fk.strategies[0]
        tree = enum_fk.build_fk_tree(strategy)
        built = enum_fk.build_plan(strategy, tree.assignment())
        assert built.plan.profile_unit_ids is not None
        assert len(built.plan.profile_unit_ids) < len(built.plan.units)


class TestStreamPhase:
    def test_prepare_stream_phase(self, tiny_sublstm):
        enum = Enumerator(tiny_sublstm.graph, P100, AstraFeatures.preset("FKS"))
        strategy = enum.strategies[0]
        tree = enum.build_fk_tree(strategy)
        partition, stream_tree = enum.prepare_stream_phase(strategy, tree.assignment())
        assert partition.num_super_epochs >= 1
        assert stream_tree.mode == "parallel"
        for child in stream_tree.children:
            assert child.mode == "prefix"

    def test_stream_plan_valid(self, tiny_sublstm):
        enum = Enumerator(tiny_sublstm.graph, P100, AstraFeatures.preset("FKS"))
        strategy = enum.strategies[0]
        fk = enum.build_fk_tree(strategy).assignment()
        partition, stree = enum.prepare_stream_phase(strategy, fk)
        options = {}
        for var in stree.variables():
            ordinal, epoch = var.payload
            options[ordinal] = epoch.options[min(1, len(epoch.options) - 1)]
        built = enum.build_plan(
            strategy, fk, stream_options=options, partition=partition
        )
        built.plan.validate_covering()
        lowered = Dispatcher(tiny_sublstm.graph).lower(built.plan)
        assert built.plan.num_streams >= 1
