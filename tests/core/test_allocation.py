"""Tests for allocation strategies (the section 4.5.2 fork)."""

import pytest

from repro.core import analyse_fusion, build_arena_plan, enumerate_strategies
from repro.core.allocation import resolve_single_tensor_conflicts
from repro.core.fusion import Requirement, resolve_static_conflicts


class TestStrategyEnumeration:
    def test_sublstm_has_multiple_strategies(self, tiny_sublstm):
        analysis = resolve_static_conflicts(analyse_fusion(tiny_sublstm.graph))
        strategies = enumerate_strategies(analysis)
        assert len(strategies) >= 2
        assert strategies[0].strategy_id == 0

    def test_strategies_internally_consistent(self, tiny_sublstm):
        """No strategy may satisfy two conflicting requirements."""
        analysis = resolve_static_conflicts(analyse_fusion(tiny_sublstm.graph))
        for strategy in enumerate_strategies(analysis):
            satisfied = list(strategy.satisfied)
            for i, a in enumerate(satisfied):
                for b in satisfied[i + 1:]:
                    assert not a.conflicts_with(b), (strategy.label, a.label, b.label)

    def test_strategies_are_maximal(self, tiny_sublstm):
        """Greedy strategies can't be extended by any unsatisfied req."""
        analysis = resolve_static_conflicts(analyse_fusion(tiny_sublstm.graph))
        all_reqs = {g.requirement for g in analysis.groups if g.requirement}
        all_reqs.update(analysis.ladder_requirements)
        for strategy in enumerate_strategies(analysis):
            for req in all_reqs - strategy.satisfied:
                assert any(req.conflicts_with(s) for s in strategy.satisfied), (
                    f"{strategy.label} could also satisfy {req.label}"
                )

    def test_forward_first_satisfies_gate_blocks(self, tiny_sublstm):
        analysis = resolve_static_conflicts(analyse_fusion(tiny_sublstm.graph))
        strategies = enumerate_strategies(analysis)
        fwd = strategies[0]
        blocks = [
            g.requirement for g in analysis.groups
            if g.pass_tag == "forward" and g.requirement and g.requirement.tag == "block"
        ]
        assert blocks
        assert all(fwd.supports(r) for r in blocks)

    def test_strategies_differ(self, tiny_sublstm):
        analysis = resolve_static_conflicts(analyse_fusion(tiny_sublstm.graph))
        strategies = enumerate_strategies(analysis)
        sets = [s.satisfied for s in strategies]
        assert len(set(sets)) == len(sets)

    def test_no_requirements_yields_default(self):
        from repro.core.fusion import FusionAnalysis

        strategies = enumerate_strategies(FusionAnalysis([], [], []))
        assert len(strategies) == 1
        assert strategies[0].supports(None)

    def test_context_key_distinct(self, tiny_sublstm):
        analysis = resolve_static_conflicts(analyse_fusion(tiny_sublstm.graph))
        strategies = enumerate_strategies(analysis)
        keys = {s.context_key() for s in strategies}
        assert len(keys) == len(strategies)


class TestSingleTensorResolution:
    def test_overlap_of_one_is_removed(self):
        a = Requirement(((1,), (2,), (3,)), "rows", "a")
        b = Requirement(((3,), (4,), (5,)), "cols", "b")
        resolved = resolve_single_tensor_conflicts([a, b])
        for r1 in resolved:
            for r2 in resolved:
                if r1 is not r2:
                    assert not r1.conflicts_with(r2)
        assert all(3 not in r.all_tensors() for r in resolved)

    def test_multi_overlap_untouched(self):
        a = Requirement(((1,), (2,), (3,)), "rows", "a")
        b = Requirement(((2,), (3,), (4,)), "cols", "b")
        resolved = resolve_single_tensor_conflicts([a, b])
        assert set(resolved) == {a, b}

    def test_requirement_shrunk_below_two_dropped(self):
        a = Requirement(((1,), (2,)), "rows", "a")
        b = Requirement(((2,), (3,)), "cols", "b")
        resolved = resolve_single_tensor_conflicts([a, b])
        assert resolved == []


class TestArenaPlans:
    def test_satisfied_rows_become_contiguity_groups(self, tiny_sublstm):
        analysis = resolve_static_conflicts(analyse_fusion(tiny_sublstm.graph))
        strategies = enumerate_strategies(analysis)
        plan = build_arena_plan(tiny_sublstm.graph, strategies[0])
        assert plan.arena_size_bytes > 0

    def test_overlapping_groups_skipped_not_raised(self, tiny_sublstm):
        analysis = resolve_static_conflicts(analyse_fusion(tiny_sublstm.graph))
        for strategy in enumerate_strategies(analysis):
            build_arena_plan(tiny_sublstm.graph, strategy)  # must not raise
