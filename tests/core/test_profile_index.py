"""Tests for the profile index and key mangling (section 4.6)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ProfileIndex, mangle


class TestMangle:
    def test_context_prefix(self):
        assert mangle(("alloc", 1), ("gemm", 5)) == ("alloc", 1, "gemm", 5)

    def test_empty_context(self):
        assert mangle((), ("gemm", 5)) == ("gemm", 5)

    def test_different_contexts_different_keys(self):
        """Changing the higher-level binding must miss in the index (the
        paper's invalidation mechanism)."""
        assert mangle(("alloc", 0), ("k",)) != mangle(("alloc", 1), ("k",))


class TestProfileIndex:
    def test_record_and_get(self):
        index = ProfileIndex()
        index.record(("a",), 5.0)
        assert index.get(("a",)) == 5.0
        assert ("a",) in index

    def test_miss_returns_none_and_counts(self):
        index = ProfileIndex()
        assert index.get(("missing",)) is None
        assert index.misses == 1
        assert index.lookups == 1

    def test_rerecord_updates(self):
        index = ProfileIndex()
        index.record(("a",), 5.0)
        index.record(("a",), 4.0)
        assert index.get(("a",)) == 4.0
        assert len(index) == 1

    def test_best_under_prefix(self):
        index = ProfileIndex()
        index.record(("alloc", 0, "g", 1), 9.0)
        index.record(("alloc", 0, "g", 2), 4.0)
        index.record(("alloc", 1, "g", 1), 1.0)
        key, value = index.best_under(("alloc", 0))
        assert value == 4.0 and key == ("alloc", 0, "g", 2)

    def test_best_under_empty(self):
        assert ProfileIndex().best_under(("x",)) is None

    def test_snapshot_is_copy(self):
        index = ProfileIndex()
        index.record(("a",), 1.0)
        snap = index.snapshot()
        snap[("a",)] = 99.0
        assert index.get(("a",)) == 1.0


@settings(max_examples=50, deadline=None)
@given(
    entries=st.dictionaries(
        st.tuples(st.text(max_size=3), st.integers(0, 9)),
        st.floats(0.1, 1e6, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_property_index_is_a_faithful_map(entries):
    index = ProfileIndex()
    for key, value in entries.items():
        index.record(key, value)
    for key, value in entries.items():
        assert index.get(key) == value
    assert len(index) == len(entries)


class TestPersistence:
    def test_round_trip(self):
        index = ProfileIndex()
        index.record(("alloc", 0, "fusion:g1", (2, "cublas")), 41.5)
        index.record(("bucket", 3, "kernel:x"), 7.0)
        restored = ProfileIndex.loads(index.dumps())
        assert len(restored) == 2
        assert restored.get(("bucket", 3, "kernel:x")) == 7.0

    def test_tuple_choice_keys_restored(self):
        """Fusion choices are (chunk, library) tuples inside the key; the
        JSON round-trip must restore them as tuples, not lists."""
        index = ProfileIndex()
        key = ("alloc", 0, "fusion:g1", (4, "oai_1"))
        index.record(key, 12.0)
        restored = ProfileIndex.loads(index.dumps())
        assert restored.get(key) == 12.0

    def test_version_checked(self):
        with pytest.raises(ValueError):
            ProfileIndex.loads(json.dumps({"version": 9, "entries": []}))

    def test_warm_start_skips_exploration(self, tiny_sublstm=None):
        """A restored index makes a rerun nearly free (checkpoint/resume)."""
        from repro import AstraSession
        from repro.models import ModelConfig, build_sublstm

        config = ModelConfig(batch_size=4, seq_len=3, hidden_size=32,
                             embed_size=32, vocab_size=50)
        model = build_sublstm(config)
        cold = AstraSession(model, features="FK", seed=0)
        cold_report = cold.optimize()
        restored = ProfileIndex.loads(cold.wirer.index.dumps())
        warm = AstraSession(model, features="FK", seed=0, index=restored)
        warm_report = warm.optimize()
        assert warm_report.configs_explored < cold_report.configs_explored
        assert warm_report.best_time_us == pytest.approx(cold_report.best_time_us)


class TestRoundTripProperty:
    """Satellite fix: `ProfileIndex.loads` must recursively restore nested
    tuple keys (fusion choices embed (chunk, library) tuples arbitrarily
    deep), so dumps/loads is an exact inverse for any well-formed key."""

    _scalar = st.one_of(
        st.integers(min_value=-(10 ** 6), max_value=10 ** 6),
        st.text(max_size=12),
    )
    _key_part = st.recursive(
        _scalar,
        lambda inner: st.lists(inner, min_size=1, max_size=3).map(tuple),
        max_leaves=6,
    )
    _store = st.dictionaries(
        keys=st.lists(_key_part, min_size=1, max_size=4).map(tuple),
        values=st.floats(allow_nan=False, allow_infinity=False),
        max_size=8,
    )

    @given(store=_store)
    @settings(max_examples=100, deadline=None)
    def test_dumps_loads_is_identity(self, store):
        index = ProfileIndex()
        for key, value in store.items():
            index.record(key, value)
        restored = ProfileIndex.loads(index.dumps())
        assert len(restored) == len(store)
        for key, value in store.items():
            assert key in restored
            assert restored.get(key) == value
