"""Tests for the exploration timeline and amortization analysis."""

import pytest

from repro import AstraSession
from repro.models import build_sublstm
from tests.conftest import SMALL


@pytest.fixture(scope="module")
def report():
    model = build_sublstm(SMALL)
    return AstraSession(model, features="FKS", seed=1).optimize()


class TestTimeline:
    def test_every_exploration_minibatch_recorded(self, report):
        astra = report.astra
        assert len(astra.timeline) == astra.configs_explored

    def test_phases_labelled(self, report):
        phases = {phase for phase, _t in report.astra.timeline}
        assert any(p.startswith("fk/") for p in phases)
        assert any(p.startswith("streams/") for p in phases)

    def test_all_entries_positive(self, report):
        assert all(t > 0 for _p, t in report.astra.timeline)

    def test_exploration_cheap_on_average(self, report):
        """Work conservation: the *average* exploration mini-batch is no
        slower than native (most configs already include fusion); only the
        deliberately-bad points of the state space (e.g. OAI_2 kernels on
        wide GEMMs) spike, and each is visited once."""
        times = [t for _p, t in report.astra.timeline]
        mean = sum(times) / len(times)
        assert mean < 1.5 * report.native_time_us
        assert max(times) < 30 * report.native_time_us


class TestAmortization:
    def test_breakeven_finite(self, report):
        am = report.astra.amortization(report.native_time_us)
        assert am.exploration_minibatches == report.astra.configs_explored
        assert am.breakeven_minibatches != float("inf")

    def test_breakeven_tiny_fraction_of_training(self, report):
        """Section 4.2: 'a few thousand out of millions of mini-batches' --
        the exploration cost is negligible against a real training run."""
        am = report.astra.amortization(report.native_time_us)
        # overhead repaid within a few thousand steady-state mini-batches
        assert am.breakeven_minibatches < 5000

    def test_no_gain_means_infinite_breakeven(self, report):
        am = report.astra.amortization(report.astra.best_time_us)
        assert am.breakeven_minibatches == float("inf") or am.breakeven_minibatches >= 0
