"""Tests for the noise-robust measurement policy (min-of-k + MAD)."""

import pytest

from repro.core import (
    QUARANTINED_US,
    ROBUST,
    TRUSTING,
    MeasurementPolicy,
    mad,
    median,
    reject_outliers,
    robust_min,
)


class TestStatistics:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        assert mad([1.0, 2.0, 3.0]) == 1.0
        assert mad([5.0, 5.0, 5.0]) == 0.0

    def test_reject_outliers_drops_extremes(self):
        values = [10.0, 10.1, 9.9, 10.0, 100.0]
        kept = reject_outliers(values)
        assert 100.0 not in kept
        assert len(kept) == 4

    def test_reject_outliers_keeps_small_samples(self):
        # fewer than 3 samples: no robust spread estimate, keep all
        assert reject_outliers([1.0, 100.0]) == [1.0, 100.0]

    def test_reject_outliers_zero_spread(self):
        assert reject_outliers([5.0, 5.0, 5.0, 99.0]) == [5.0, 5.0, 5.0, 99.0]

    def test_robust_min_rejects_deflated_sample(self):
        """The dangerous corruption deflates a duration: a naive min would
        crown it; MAD rejection must throw it out first."""
        values = [10.0, 10.2, 9.8, 10.1, 0.5]
        assert robust_min(values) == 9.8

    def test_robust_min_single_sample(self):
        assert robust_min([7.0]) == 7.0


class TestMeasurementPolicy:
    def test_defaults_are_paper_behavior(self):
        assert TRUSTING.samples == 1
        assert ROBUST.samples > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementPolicy(samples=0)
        with pytest.raises(ValueError):
            MeasurementPolicy(max_attempts=0)

    def test_backoff_grows_exponentially(self):
        policy = MeasurementPolicy(backoff_minibatches=2)
        assert policy.backoff_for(1) == 2
        assert policy.backoff_for(2) == 4
        assert policy.backoff_for(3) == 8
        assert policy.backoff_for(0) == 0

    def test_backoff_disabled(self):
        assert MeasurementPolicy(backoff_minibatches=0).backoff_for(3) == 0

    def test_quarantine_sentinel_is_json_safe(self):
        import json

        assert json.loads(json.dumps(QUARANTINED_US)) == QUARANTINED_US
        assert QUARANTINED_US > 1e12  # larger than any real measurement
