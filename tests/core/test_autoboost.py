"""Satellite: exploration under autoboost clock jitter.

The paper (section 5.3) pins clocks to the base frequency because
autoboost makes single-sample timings unstable.  These tests show (a)
exploration stays deterministic for a fixed seed even with jitter armed,
and (b) min-of-k measurement recovers the base-clock winner that a
single trusting sample gets wrong."""

from dataclasses import replace

import pytest

from repro.core import MeasurementPolicy
from repro.core.session import AstraSession
from repro.gpu import CLOCK_AUTOBOOST, P100
from repro.runtime import Executor

#: jitter cranked well past the default 0.12 so the seeded noise is
#: strong enough to flip a winner within a small exploration
NOISY = replace(P100.with_clock(CLOCK_AUTOBOOST), autoboost_jitter=0.6)


def clean_time(model, plan):
    """Evaluate a plan on a pinned-clock device: the ground truth."""
    return Executor(model.graph, P100, seed=0).run(plan).total_time_us


class TestDeterminism:
    def test_fixed_seed_fixed_exploration(self, small_sublstm):
        """Jitter is seeded simulator state, not wall-clock noise: the
        same seed must reproduce the identical exploration."""
        runs = [
            AstraSession(
                small_sublstm, device=NOISY, features="FK", seed=11,
            ).optimize(max_minibatches=40)
            for _ in range(2)
        ]
        assert runs[0].best_time_us == runs[1].best_time_us
        assert runs[0].astra.assignment == runs[1].astra.assignment
        assert runs[0].astra.timeline == runs[1].astra.timeline


class TestMinOfK:
    def test_single_sample_crowns_wrong_winner(self, small_sublstm):
        """With heavy jitter, one lucky boost makes a slower config look
        fastest -- the failure mode min-of-k exists for."""
        base = AstraSession(
            small_sublstm, device=P100, features="FK", seed=3,
        ).optimize(max_minibatches=40)
        base_time = clean_time(small_sublstm, base.astra.best_plan)

        trusting = AstraSession(
            small_sublstm, device=NOISY, features="FK", seed=0,
        ).optimize(max_minibatches=40)
        trusting_time = clean_time(small_sublstm, trusting.astra.best_plan)
        assert trusting_time > base_time * 1.001

    def test_min_of_k_recovers_base_clock_winner(self, small_sublstm):
        """Same noisy device, same seed, 7 samples per configuration:
        the winner matches the pinned-clock exploration."""
        base = AstraSession(
            small_sublstm, device=P100, features="FK", seed=3,
        ).optimize(max_minibatches=40)
        base_time = clean_time(small_sublstm, base.astra.best_plan)

        robust = AstraSession(
            small_sublstm, device=NOISY, features="FK", seed=0,
            policy=MeasurementPolicy(samples=7),
        ).optimize(max_minibatches=280)
        robust_time = clean_time(small_sublstm, robust.astra.best_plan)
        assert robust_time <= base_time * 1.001
        assert robust.astra.assignment == base.astra.assignment
