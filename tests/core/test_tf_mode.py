"""Tests for the TensorFlow-prototype limitations mode (section 5.4)."""

import pytest

from repro import AstraSession
from repro.core import AstraFeatures


class TestTfMode:
    def test_preset_exists(self):
        features = AstraFeatures.preset("FK-tf")
        assert features.tf_mode
        assert not features.streams

    def test_fusion_pays_copies(self, small_sublstm):
        """Fused launches in TF mode carry gather copies even for layouts
        the allocator could satisfy natively."""
        pt = AstraSession(small_sublstm, features="FK", seed=1).optimize()
        tf = AstraSession(small_sublstm, features="FK-tf", seed=1).optimize()
        assert tf.best_time_us >= pt.best_time_us

    def test_still_beats_native(self, small_sublstm):
        """Despite the copies, adaptation still wins (Table 9's premise)."""
        tf = AstraSession(small_sublstm, features="FK-tf", seed=1).optimize()
        assert tf.speedup_over_native > 1.0

    def test_no_stream_phase(self, small_sublstm):
        report = AstraSession(
            small_sublstm,
            features=AstraFeatures(streams=True, tf_mode=True),
            seed=1,
        ).optimize()
        assert not any(p.name.startswith("streams/") for p in report.astra.phases)
