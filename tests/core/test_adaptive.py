"""Tests for adaptive variables and the update tree's exploration modes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AdaptiveVariable,
    MODE_EXHAUSTIVE,
    MODE_PARALLEL,
    MODE_PREFIX,
    ProfileIndex,
    UpdateNode,
    count_configurations,
)

CTX = ("test",)


def explore(tree, index, metric):
    """Drive a tree to completion, measuring each visited configuration
    with ``metric(assignment) -> {var_name: value}``."""
    tree.initialize()
    visited = []
    while True:
        assignment = tree.assignment()
        visited.append(dict(assignment))
        values = metric(assignment)
        for var in tree.variables():
            key = var.profile_key(CTX)
            if key not in index and var.name in values:
                index.record(key, values[var.name])
        if not tree.advance(index, CTX):
            break
    return visited


class TestAdaptiveVariable:
    def test_paper_interface(self):
        """initialize / iterate / get_profile_value (section 4.4.2)."""
        var = AdaptiveVariable("v", [1, 2, 3])
        index = ProfileIndex()
        var.initialize()
        assert var.value == 1
        assert var.get_profile_value(index, CTX) is None
        index.record(var.profile_key(CTX), 7.5)
        assert var.get_profile_value(index, CTX) == 7.5

    def test_advance_visits_all_choices(self):
        var = AdaptiveVariable("v", ["a", "b", "c"])
        index = ProfileIndex()
        seen = [var.value]
        while True:
            index.record(var.profile_key(CTX), 1.0)
            if not var.advance(index, CTX):
                break
            seen.append(var.value)
        assert seen == ["a", "b", "c"]

    def test_advance_skips_measured_choices(self):
        """Profile-index hits cost no mini-batches (section 4.6)."""
        var = AdaptiveVariable("v", ["a", "b", "c"])
        index = ProfileIndex()
        index.record(var.profile_key(CTX, "b"), 2.0)
        index.record(var.profile_key(CTX, "a"), 1.0)
        assert var.advance(index, CTX)  # lands on "c", skipping "b"
        assert var.value == "c"

    def test_finalize_picks_best(self):
        var = AdaptiveVariable("v", ["a", "b", "c"])
        index = ProfileIndex()
        for choice, value in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            index.record(var.profile_key(CTX, choice), value)
        var.finalize(index, CTX)
        assert var.value == "b"

    def test_finalize_without_measurements_keeps_current(self):
        var = AdaptiveVariable("v", ["a", "b"])
        var.finalize(ProfileIndex(), CTX)
        assert var.value == "a"

    def test_single_choice_exhausted_immediately(self):
        var = AdaptiveVariable("v", ["only"])
        assert not var.advance(ProfileIndex(), CTX)

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveVariable("v", [])


class TestParallelMode:
    def test_trial_count_is_max_not_product(self):
        """Section 4.5.1: parallel exploration makes the space additive."""
        vars_ = [AdaptiveVariable(f"v{i}", list(range(3 + i))) for i in range(4)]
        tree = UpdateNode("root", MODE_PARALLEL, list(vars_))
        index = ProfileIndex()
        visited = explore(tree, index, lambda a: {k: 1.0 for k in a})
        assert len(visited) == max(len(v.choices) for v in vars_)

    def test_each_variable_converges_to_its_best(self):
        v1 = AdaptiveVariable("v1", [0, 1, 2])
        v2 = AdaptiveVariable("v2", [0, 1])
        tree = UpdateNode("root", MODE_PARALLEL, [v1, v2])
        index = ProfileIndex()
        costs = {"v1": {0: 5.0, 1: 1.0, 2: 3.0}, "v2": {0: 2.0, 1: 9.0}}
        explore(tree, index, lambda a: {k: costs[k][v] for k, v in a.items()})
        tree.finalize(index, CTX)
        assert v1.value == 1
        assert v2.value == 0

    def test_paper_example_6_trials(self):
        """The section 4.5.1 example: 5 groups x (3 chunk x 2 kernel)
        choices need 6 trials, not (3*2)^5 = 7776."""
        groups = [
            AdaptiveVariable(
                f"g{i}", [(c, k) for c in (1, 2, 4) for k in ("a", "b")]
            )
            for i in range(5)
        ]
        tree = UpdateNode("root", MODE_PARALLEL, list(groups))
        assert count_configurations(tree) == 6
        index = ProfileIndex()
        visited = explore(tree, index, lambda a: {k: hash((k, a[k])) % 7 + 1.0 for k in a})
        assert len(visited) == 6


class TestExhaustiveMode:
    def test_visits_cartesian_product(self):
        v1 = AdaptiveVariable("v1", [0, 1])
        v2 = AdaptiveVariable("v2", ["x", "y", "z"])
        tree = UpdateNode("root", MODE_EXHAUSTIVE, [v1, v2])
        tree.initialize()
        seen = {(tree.assignment()["v1"], tree.assignment()["v2"])}
        index = ProfileIndex()
        while tree.advance(index, CTX):
            a = tree.assignment()
            seen.add((a["v1"], a["v2"]))
        assert seen == {(a, b) for a in (0, 1) for b in ("x", "y", "z")}

    def test_count(self):
        v1 = AdaptiveVariable("v1", [0, 1])
        v2 = AdaptiveVariable("v2", [0, 1, 2])
        assert count_configurations(UpdateNode("r", MODE_EXHAUSTIVE, [v1, v2])) == 6


class TestPrefixMode:
    def test_sequential_freezing(self):
        """Section 4.5.4: child i is frozen at its best before child i+1
        starts, making the space additive in the number of epochs."""
        v1 = AdaptiveVariable("e0", [0, 1, 2])
        v2 = AdaptiveVariable("e1", [0, 1, 2])
        tree = UpdateNode("se", MODE_PREFIX, [v1, v2])
        index = ProfileIndex()
        costs = {"e0": {0: 3.0, 1: 1.0, 2: 2.0}, "e1": {0: 9.0, 1: 8.0, 2: 7.0}}

        order = []
        tree.initialize()
        while True:
            a = tree.assignment()
            order.append((a["e0"], a["e1"]))
            for var in tree.variables():
                key = var.profile_key(CTX)
                if key not in index:
                    index.record(key, costs[var.name][var.value])
            if not tree.advance(index, CTX):
                break
        # while e1 explores, e0 is already frozen at its best (1)
        tail = [pair for pair in order if pair[1] != 0]
        assert all(pair[0] == 1 for pair in tail)
        tree.finalize(index, CTX)
        assert (v1.value, v2.value) == (1, 2)

    def test_count_is_sum(self):
        v1 = AdaptiveVariable("e0", [0, 1, 2])
        v2 = AdaptiveVariable("e1", [0, 1])
        assert count_configurations(UpdateNode("r", MODE_PREFIX, [v1, v2])) == 5


class TestTreeComposition:
    def test_nested_parallel_of_prefix(self):
        """The stream tree shape: parallel over super-epochs, prefix over
        epochs inside each (sections 4.5.3-4.5.4)."""
        se0 = UpdateNode("se0", MODE_PREFIX, [
            AdaptiveVariable("se0/e0", [0, 1]),
            AdaptiveVariable("se0/e1", [0, 1, 2]),
        ])
        se1 = UpdateNode("se1", MODE_PREFIX, [
            AdaptiveVariable("se1/e0", [0, 1, 2, 3]),
        ])
        root = UpdateNode("root", MODE_PARALLEL, [se0, se1])
        # parallel: max(2+3, 4) = 5 as an upper bound; the first visit
        # measures every child's initial choice, saving one trial
        assert count_configurations(root) == 5
        index = ProfileIndex()
        visited = explore(root, index, lambda a: {k: float(v) + 1 for k, v in a.items()})
        assert len(visited) == 4
        assert len(visited) <= count_configurations(root)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            UpdateNode("bad", "sideways")

    def test_assignment_merges_children(self):
        tree = UpdateNode("r", MODE_PARALLEL, [
            AdaptiveVariable("a", [1]), AdaptiveVariable("b", [2]),
        ])
        tree.initialize()
        assert tree.assignment() == {"a": 1, "b": 2}


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 5), min_size=1, max_size=5),
    costs_seed=st.integers(0, 1000),
)
def test_property_parallel_exploration_finds_per_var_optimum(sizes, costs_seed):
    """Whatever the cost landscape, parallel exploration + finalize leaves
    every variable at its individually-best measured choice."""
    import numpy as np

    rng = np.random.default_rng(costs_seed)
    vars_ = [AdaptiveVariable(f"v{i}", list(range(n))) for i, n in enumerate(sizes)]
    costs = {v.name: {c: float(rng.uniform(1, 100)) for c in v.choices} for v in vars_}
    tree = UpdateNode("root", MODE_PARALLEL, list(vars_))
    index = ProfileIndex()
    explore(tree, index, lambda a: {k: costs[k][v] for k, v in a.items()})
    tree.finalize(index, CTX)
    for var in vars_:
        best = min(var.choices, key=lambda c: costs[var.name][c])
        assert costs[var.name][var.value] == costs[var.name][best]
