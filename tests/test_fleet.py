"""Heterogeneous fleet strategy search (docs/distributed.md).

The load-bearing claims, each pinned here:

* the interconnect contention model is monotone where physics says it
  must be (hypothesis properties);
* the analytic strategy bound is *admissible* -- never above the
  measured per-sample time -- so bound pruning is winner-preserving:
  the pruned search's winner is bit-identical to the exhaustive
  sweep's, on any worker count;
* pruning stands down whenever its exactness preconditions fail
  (fault injection, autoboost clocks, inner-Astra compute), and a
  faulted search still converges to the same faulted winner pruned or
  exhaustive;
* on the default NVLink hetero fleet at batch 256, the winner is a
  heterogeneous placement that beats the best homogeneous one -- the
  claim the fleet exists to demonstrate.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed.interconnect import NVLINK, PCIE
from repro.faults.plan import FaultPlan
from repro.fleet import (
    FleetMeasurer,
    Strategy,
    enumerate_strategies,
    get_fleet,
    run_fleet_search,
    with_clock,
)
from repro.fleet.strategy import balanced_shards, weighted_shards
from repro.learn import FleetStrategyModel, LearnedCostModel, harvest_fleet
from repro.models import MODEL_BUILDERS


def _config(name: str, batch: int = 64):
    module = __import__(f"repro.models.{name}", fromlist=["DEFAULT_CONFIG"])
    return module.DEFAULT_CONFIG.scaled(batch_size=batch, seq_len=5)


def _search(name: str, batch: int = 64, **kwargs):
    return run_fleet_search(
        MODEL_BUILDERS[name], _config(name, batch), get_fleet("hetero"),
        model_name=name, **kwargs,
    )


@pytest.fixture(scope="module")
def scrnn_exhaustive():
    return _search("scrnn", exhaustive=True)


@pytest.fixture(scope="module")
def scrnn_256_exhaustive():
    return _search("scrnn", batch=256, exhaustive=True)


# ---------------------------------------------------------------------------
# interconnect contention model
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    fabric=st.sampled_from([NVLINK, PCIE]),
    nbytes=st.integers(1, 1 << 30),
    extra=st.integers(1, 1 << 20),
    world=st.integers(2, 8),
)
def test_allreduce_monotone_in_bytes(fabric, nbytes, extra, world):
    assert fabric.allreduce_us(nbytes + extra, world) >= \
        fabric.allreduce_us(nbytes, world)


@settings(max_examples=30, deadline=None)
@given(
    fabric=st.sampled_from([NVLINK, PCIE]),
    nbytes=st.integers(1, 1 << 30),
    world=st.integers(2, 7),
)
def test_allreduce_cost_non_decreasing_in_world(fabric, nbytes, world):
    """Growing the ring never makes the collective cheaper: the latency
    term grows linearly and the bandwidth term's (world-1)/world factor
    approaches 1 from below."""
    assert fabric.allreduce_us(nbytes, world + 1) >= \
        fabric.allreduce_us(nbytes, world)


@settings(max_examples=30, deadline=None)
@given(
    fabric=st.sampled_from([NVLINK, PCIE]),
    nbytes=st.integers(0, 1 << 30),
    world=st.integers(2, 8),
)
def test_broadcast_respects_latency_floor(fabric, nbytes, world):
    assert fabric.broadcast_us(nbytes, world) >= fabric.latency_us


@settings(max_examples=30, deadline=None)
@given(
    fabric=st.sampled_from([NVLINK, PCIE]),
    nbytes=st.integers(1, 1 << 30),
    extra=st.integers(1, 1 << 20),
    concurrent=st.integers(1, 7),
)
def test_contended_us_monotone(fabric, nbytes, extra, concurrent):
    """More bytes and more concurrent transfers both cost more; a single
    transfer is the uncontended floor."""
    base = fabric.contended_us(nbytes, concurrent)
    assert fabric.contended_us(nbytes + extra, concurrent) >= base
    assert fabric.contended_us(nbytes, concurrent + 1) >= base
    assert fabric.contended_us(nbytes, 1) <= base


# ---------------------------------------------------------------------------
# strategy space
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(batch=st.integers(1, 512), world=st.integers(1, 8))
def test_balanced_shards_partition_the_batch(batch, world):
    shards = balanced_shards(batch, world)
    assert sum(shards) == batch
    assert max(shards) - min(shards) <= 1


@settings(max_examples=30, deadline=None)
@given(
    batch=st.integers(4, 512),
    speeds=st.lists(st.floats(10.0, 1000.0), min_size=2, max_size=4),
)
def test_weighted_shards_partition_and_favor_fast_devices(batch, speeds):
    placement = tuple(f"cls{i}" for i in range(len(speeds)))
    speed_us = dict(zip(placement, speeds))
    shards = weighted_shards(batch, placement, speed_us)
    assert sum(shards) == batch
    assert all(s >= 1 for s in shards)
    # deterministic
    assert shards == weighted_shards(batch, placement, speed_us)
    fastest = min(range(len(speeds)), key=lambda i: speeds[i])
    assert shards[fastest] == max(shards)


def test_strategy_key_roundtrip_over_enumeration():
    fleet = get_fleet("hetero")
    strategies = enumerate_strategies(
        fleet, batch_size=64, num_layer_scopes=2, microbatches=4,
    )
    keys = [s.key() for s in strategies]
    assert len(set(keys)) == len(keys), "strategy keys must be unique"
    for s, key in zip(strategies, keys):
        assert Strategy.from_key(key) == s
    kinds = {s.kind for s in strategies}
    assert kinds == {"data", "pipeline"}


def test_single_scope_model_enumerates_no_pipelines():
    strategies = enumerate_strategies(
        get_fleet("hetero"), batch_size=64, num_layer_scopes=1,
    )
    assert all(s.kind == "data" for s in strategies)


# ---------------------------------------------------------------------------
# bound admissibility and pruning equivalence
# ---------------------------------------------------------------------------


def test_bound_admissible_on_every_measured_strategy(scrnn_exhaustive):
    rows = [r for r in scrnn_exhaustive.table if r["per_sample_us"] is not None]
    assert len(rows) == scrnn_exhaustive.strategies_total
    for row in rows:
        assert row["bound_us"] <= row["per_sample_us"] + 1e-9, row["label"]


@pytest.mark.parametrize("name", ["scrnn", "milstm"])
def test_pruned_winner_identical_to_exhaustive(name):
    pruned = _search(name)
    exhaustive = _search(name, exhaustive=True)
    assert pruned.winner.key() == exhaustive.winner.key()
    assert pruned.winner_per_sample_us == exhaustive.winner_per_sample_us
    assert pruned.strategies_pruned > 0
    assert pruned.measured_fraction <= 0.5
    assert pruned.standdown is None


def test_pruned_winner_identical_on_two_workers(scrnn_exhaustive):
    """Worker count changes wall-clock only: the multi-process search
    merges worker records deterministically and lands on the same winner
    and the same value."""
    two = _search("scrnn", exhaustive=True, workers=2)
    assert two.winner.key() == scrnn_exhaustive.winner.key()
    assert two.winner_per_sample_us == scrnn_exhaustive.winner_per_sample_us
    assert two.engine.get("workers") == 2


def test_pipeline_strategies_measured_on_multilayer_model():
    report = _search_stacked(exhaustive=True)
    pipeline_rows = [r for r in report.table if r["kind"] == "pipeline"]
    assert pipeline_rows, "stacked_lstm must enumerate pipeline cuts"
    for row in pipeline_rows:
        assert row["per_sample_us"] is not None
        assert row["bound_us"] <= row["per_sample_us"] + 1e-9


def _search_stacked(**kwargs):
    return run_fleet_search(
        MODEL_BUILDERS["stacked_lstm"], _config("stacked_lstm"),
        get_fleet("hetero"), model_name="stacked_lstm", **kwargs,
    )


def test_hetero_winner_beats_best_homogeneous_at_full_batch(
    scrnn_256_exhaustive,
):
    report = scrnn_256_exhaustive
    assert report.hetero_winner, report.winner.label
    assert report.best_homogeneous_measured
    assert report.winner_per_sample_us < report.best_homogeneous_us


# ---------------------------------------------------------------------------
# stand-downs
# ---------------------------------------------------------------------------


def test_chaos_standdown_and_same_faulted_winner():
    plan = FaultPlan.single("slowdown", 0.5, seed=7)
    pruned = _search("scrnn", faults=plan)
    exhaustive = _search("scrnn", faults=plan, exhaustive=True)
    assert pruned.standdown == "faults"
    assert pruned.strategies_pruned == 0
    assert pruned.winner.key() == exhaustive.winner.key()
    assert pruned.winner_per_sample_us == exhaustive.winner_per_sample_us


def test_inner_astra_stands_pruning_down():
    report = _search("scrnn", use_astra=True)
    assert report.standdown == "inner_astra"
    assert report.strategies_pruned == 0


def test_autoboost_clock_stands_pruning_down():
    fleet = with_clock(get_fleet("hetero"), "autoboost")
    report = run_fleet_search(
        MODEL_BUILDERS["scrnn"], _config("scrnn"), fleet, model_name="scrnn",
    )
    assert report.standdown == "clock"
    assert report.strategies_pruned == 0


def test_use_astra_and_faults_are_mutually_exclusive():
    with pytest.raises(ValueError):
        FleetMeasurer(
            MODEL_BUILDERS["scrnn"], _config("scrnn"), get_fleet("hetero"),
            use_astra=True, faults=FaultPlan.single("slowdown", 0.5, seed=1),
        )


# ---------------------------------------------------------------------------
# measurement sharing and accounting
# ---------------------------------------------------------------------------


def test_primitives_shared_across_strategies(scrnn_exhaustive):
    """Measuring all 12 strategies must not cost 12 full measurements:
    same (class, shard) compute primitives are measured once and shared."""
    measurer = FleetMeasurer(
        MODEL_BUILDERS["scrnn"], _config("scrnn"), get_fleet("hetero"),
    )
    a = measurer.compute_us("V100", 32)
    snapshot = len(measurer.index.snapshot())
    b = measurer.compute_us("V100", 32)
    assert a == b
    assert len(measurer.index.snapshot()) == snapshot, "cache hit re-recorded"


def test_pipeline_sample_accounting_when_batch_below_microbatches():
    """batch < microbatches degenerates to micro-batch 1 and the step
    still accounts for microbatches * micro samples."""
    measurer = FleetMeasurer(
        MODEL_BUILDERS["stacked_lstm"], _config("stacked_lstm", batch=2),
        get_fleet("hetero"),
    )
    strategy = Strategy(
        kind="pipeline", placement=("P100", "V100"), cuts=(1, 1),
        microbatches=4,
    )
    outcome = measurer.measure_strategy(strategy)
    assert outcome.detail["microbatch"] == 1
    assert outcome.samples == 4
    assert outcome.per_sample_us == outcome.step_us / 4


def test_analytic_stage_sheet_matches_measured_at_base_clock():
    """The admissibility argument leans on analytic and measured stage
    attribution being byte-identical at base clock -- same per-unit
    costs, same scope attribution.  Pin it."""
    measurer = FleetMeasurer(
        MODEL_BUILDERS["stacked_lstm"], _config("stacked_lstm"),
        get_fleet("hetero"),
    )
    for cls in ("P100", "V100"):
        analytic = measurer.analytic_stage_lo(cls, 16)
        measured = measurer.stage_us(cls, 16)
        assert set(analytic) >= set(measured)
        for scope, value in measured.items():
            assert analytic[scope] == pytest.approx(value, rel=1e-9), (
                cls, scope,
            )


# ---------------------------------------------------------------------------
# learned fleet model
# ---------------------------------------------------------------------------


def _fit_fleet_model():
    records = []
    for name in ("scrnn", "milstm"):
        records.extend(harvest_fleet(_search(name, exhaustive=True)))
        records.extend(harvest_fleet(_search(name, batch=128, exhaustive=True)))
    return FleetStrategyModel.fit(records), records


def test_learned_cut_preserves_winner(scrnn_exhaustive):
    model, records = _fit_fleet_model()
    assert model.confident()
    assert model.supports("hetero", "fleet")
    report = _search("scrnn", learned=model)
    assert report.winner.key() == scrnn_exhaustive.winner.key()
    assert report.winner_per_sample_us == scrnn_exhaustive.winner_per_sample_us
    assert report.learned_standdown is None


def test_fleet_model_roundtrip_and_kind_refusal():
    model, _ = _fit_fleet_model()
    text = model.dumps()
    back = FleetStrategyModel.loads(text)
    assert back.fingerprint == model.fingerprint
    with pytest.raises(Exception):
        LearnedCostModel.loads(text)  # wrong artifact kind must refuse


def test_harvest_fleet_skips_faulted_reports():
    plan = FaultPlan.single("slowdown", 0.5, seed=7)
    faulted = _search("scrnn", faults=plan, exhaustive=False)
    assert faulted.standdown == "faults"
    assert harvest_fleet(faulted) == []


def test_harvest_fleet_one_record_per_measured_strategy(scrnn_exhaustive):
    records = harvest_fleet(scrnn_exhaustive)
    assert len(records) == scrnn_exhaustive.strategies_measured
    for rec in records:
        assert rec.feature_set == "fleet"
        assert rec.device == "hetero"
        assert rec.target_us > 0


# ---------------------------------------------------------------------------
# report, trace, bench
# ---------------------------------------------------------------------------


def test_report_to_dict_is_json_serializable(scrnn_exhaustive):
    doc = scrnn_exhaustive.to_dict()
    text = json.dumps(doc)
    assert json.loads(text)["winner"]["label"] == scrnn_exhaustive.winner.label


def test_fleet_trace_validates(scrnn_exhaustive):
    from repro.obs.trace import fleet_trace, validate_chrome_trace

    doc = fleet_trace(scrnn_exhaustive)
    summary = validate_chrome_trace(doc)
    assert summary["events"] > 0
    assert len(summary["tracks"]) >= scrnn_exhaustive.winner.world


def test_fleet_trace_validates_for_pipeline_winner():
    from repro.obs.trace import fleet_trace, validate_chrome_trace

    measurer = FleetMeasurer(
        MODEL_BUILDERS["stacked_lstm"], _config("stacked_lstm"),
        get_fleet("hetero"),
    )
    strategy = Strategy(
        kind="pipeline", placement=("P100", "V100"), cuts=(1, 1),
        microbatches=4,
    )
    outcome = measurer.measure_strategy(strategy)

    class _Rep:
        winner = strategy
        winner_detail = outcome.detail
        winner_per_sample_us = outcome.per_sample_us
        winner_step_us = outcome.step_us
        fleet = "hetero"

    doc = fleet_trace(_Rep())
    assert validate_chrome_trace(doc)["events"] > 0


def test_bench_fleet_document_and_compare_gates():
    from repro.fleet import bench_fleet, compare_fleet_bench

    doc = bench_fleet("scrnn", batch=64, quick=True)
    assert doc["ok"], doc["failures"]
    assert doc["winner_match"]
    assert doc["legs"]["pruned"]["measured_fraction"] <= 0.5
    assert doc["legs"]["pruned"]["strategies_pruned"] > 0
    assert doc["strategies_per_sec_multiple"] > 0

    # self-compare is clean
    assert compare_fleet_bench(doc, doc)["ok"]

    # a mislabelled baseline (different model/config) is refused
    mislabelled = dict(doc, model="milstm")
    diff = compare_fleet_bench(doc, mislabelled)
    assert not diff["ok"]
    assert any("mismatch" in f for f in diff["failures"])

    # a collapsed strategies/sec multiple fails the regression gate
    slower = json.loads(json.dumps(doc))
    baseline = json.loads(json.dumps(doc))
    slower["strategies_per_sec_multiple"] = (
        baseline["strategies_per_sec_multiple"] * 0.5
    )
    diff = compare_fleet_bench(slower, baseline)
    assert not diff["ok"]
    assert any("regressed" in f for f in diff["failures"])
